// Package serve is the long-running evaluation service of the PSI
// reproduction: a stdlib net/http daemon (cmd/psid) that accepts Prolog
// program + query jobs over JSON, runs them on pooled simulated machines
// through the shared compiled-program cache, and answers with either a
// stream of solutions (NDJSON or SSE) or the full psi-run-report/v1
// document — byte-identical to what `psi -json` writes for the same job.
//
// The serving layer is a thin deterministic shell over the engine seam:
//
//   - every job compiles through harness.CompileKeyed, keyed by content
//     hash, behind a bounded LRU so an unbounded stream of distinct
//     programs cannot grow the process without bound;
//   - every run borrows a pooled machine (harness.Compiled.Open) whose
//     Reset guarantees bit-identical behaviour to a fresh machine, which
//     is what makes reports reproducible across requests;
//   - per-request budgets (steps, timeout) and injected faults surface
//     through the engine error taxonomy, mapped onto HTTP statuses by
//     the single table in status.go;
//   - admission is a bounded queue with backpressure (429 when
//     saturated) and a drain mode for graceful shutdown (503 for new
//     work, in-flight runs complete or end with their own budget class).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// SpecSchema identifies the job-spec JSON schema accepted by POST
// /v1/solve. Unknown fields are rejected, so a typo'd budget never
// silently runs unbounded.
const SpecSchema = "psi-serve-job/v1"

// maxSpecBytes bounds the request body a single job may carry.
const maxSpecBytes = 8 << 20

// CacheSpec selects the simulated cache geometry for a job, mirroring
// the psi CLI's -cache/-sets/-store-through/-nocache flags. The zero
// value (or a nil CacheSpec) selects the PSI's 8K-word two-set store-in
// cache.
type CacheSpec struct {
	Words        int  `json:"words,omitempty"`
	Sets         int  `json:"sets,omitempty"`
	StoreThrough bool `json:"store_through,omitempty"`
	Disable      bool `json:"disable,omitempty"`
}

// JobSpec is one evaluation job: a Prolog program plus the goal driving
// it, with per-request budgets and machine configuration. Fields left
// zero take the daemon's configured defaults (see Defaults).
type JobSpec struct {
	// Schema optionally names the spec schema; when present it must be
	// SpecSchema.
	Schema string `json:"schema,omitempty"`
	// Program is the Prolog source (required).
	Program string `json:"program"`
	// Query is the driving goal (default "go", like `psi -g`).
	Query string `json:"query,omitempty"`
	// Workload labels the run in reports and metrics (default "<job>").
	Workload string `json:"workload,omitempty"`
	// All enumerates every solution instead of stopping at the first
	// (`psi -all`).
	All bool `json:"all,omitempty"`
	// Limit bounds the enumerated solutions under All (0 = unbounded).
	Limit int `json:"limit,omitempty"`
	// Steps bounds the simulation in machine steps; exceeding it ends
	// the run with the step-limit class (0 = the daemon default).
	Steps int64 `json:"steps,omitempty"`
	// TimeoutMS bounds the run in wall-clock milliseconds; exceeding it
	// ends the run with the deadline class (0 = the daemon default,
	// which may itself be "none").
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Engine selects the accounting mode, "exact" or "fast" ("" = the
	// daemon default). Identical output either way; fast is cheaper on
	// the host.
	Engine string `json:"engine,omitempty"`
	// Stream switches the response to streamed solutions (NDJSON, or SSE
	// under `Accept: text/event-stream`) ending in a report event,
	// instead of a bare psi-run-report/v1 body.
	Stream bool `json:"stream,omitempty"`
	// HeartbeatCycles, for streamed jobs, emits a heartbeat event every
	// this many simulated cycles (0 = no heartbeats).
	HeartbeatCycles int64 `json:"heartbeat_cycles,omitempty"`
	// Fault injects a deterministic seeded fault, in the psi CLI's
	// -fault syntax (e.g. "site=mem,after=1000,seed=1"). The contained
	// fault ends the run with the fault class and a report whose fault
	// block carries the flight-recorder dump.
	Fault string `json:"fault,omitempty"`
	// Cache overrides the simulated cache geometry.
	Cache *CacheSpec `json:"cache,omitempty"`
	// Stdlib preloads the standard library before the program, like
	// `psi -stdlib`.
	Stdlib bool `json:"stdlib,omitempty"`
	// HostStats includes the non-deterministic host section (wall time,
	// allocations) in the report, like `psi -json` does. Off by default
	// so byte-identical jobs get byte-identical reports.
	HostStats bool `json:"host_stats,omitempty"`
	// DebugStack keeps the Go stack in fault reports. Off by default:
	// stacks carry goroutine ids, which would break report determinism.
	DebugStack bool `json:"debug_stack,omitempty"`
}

// Defaults are the daemon-level job-spec defaults, set in the config
// file and applied to every field a job leaves zero.
type Defaults struct {
	Query     string `json:"query,omitempty"`
	Steps     int64  `json:"steps,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Engine    string `json:"engine,omitempty"`
	Limit     int    `json:"limit,omitempty"`
}

// Config configures the daemon: listener address, admission bounds,
// drain behaviour and job defaults. The zero value is usable; see
// withDefaults for the fallbacks.
type Config struct {
	// Addr is the listen address (default ":8131").
	Addr string `json:"addr,omitempty"`
	// Workers bounds the jobs simulating concurrently (default
	// GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Queue bounds the jobs waiting for a worker; beyond it requests are
	// rejected with 429 (default 4x Workers). Negative means no waiting
	// room: every job not immediately admitted is rejected.
	Queue int `json:"queue,omitempty"`
	// DrainTimeoutMS bounds graceful drain: in-flight jobs still running
	// when it expires are hard-canceled and end with the canceled class
	// (default 30000).
	DrainTimeoutMS int64 `json:"drain_timeout_ms,omitempty"`
	// Programs bounds the compiled-program cache (default 256 entries,
	// LRU-evicted).
	Programs int `json:"programs,omitempty"`
	// WatchdogGrace is the stuck-session kill threshold as a multiple of
	// a job's wall budget: the watchdog hard-cancels a session still
	// running grace x its TimeoutMS after start (default 4; the engine's
	// own deadline handling fires long before, so a kill means the
	// session was genuinely wedged).
	WatchdogGrace float64 `json:"watchdog_grace,omitempty"`
	// WatchdogMaxMS caps jobs that carry no wall budget of their own:
	// any session running longer is hard-canceled (default 0 = such
	// jobs are exempt from the watchdog).
	WatchdogMaxMS int64 `json:"watchdog_max_ms,omitempty"`
	// WatchdogIntervalMS is the patrol period (default 100).
	WatchdogIntervalMS int64 `json:"watchdog_interval_ms,omitempty"`
	// Defaults are the job-spec defaults.
	Defaults Defaults `json:"defaults,omitempty"`
}

// LoadConfig reads a daemon config file (JSON, unknown fields rejected).
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config %s: %w", path, err)
	}
	return c, nil
}

// withDefaults fills the zero fields of a Config.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8131"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.Queue < 0:
		c.Queue = 0
	case c.Queue == 0:
		c.Queue = 4 * c.Workers
	}
	if c.DrainTimeoutMS <= 0 {
		c.DrainTimeoutMS = 30_000
	}
	if c.Programs <= 0 {
		c.Programs = 256
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 4
	}
	if c.WatchdogIntervalMS <= 0 {
		c.WatchdogIntervalMS = 100
	}
	return c
}

// DrainTimeout is the configured drain bound as a duration.
func (c Config) DrainTimeout() time.Duration {
	return time.Duration(c.withDefaults().DrainTimeoutMS) * time.Millisecond
}

// ParseSpec decodes and validates one job spec, applying the daemon
// defaults. Validation failures are plain errors (the generic "error"
// class, HTTP 400): the job never reached a machine.
func ParseSpec(r io.Reader, d Defaults) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("job spec: %w", err)
	}
	if s.Schema != "" && s.Schema != SpecSchema {
		return nil, fmt.Errorf("job spec: schema %q, want %q", s.Schema, SpecSchema)
	}
	s.applyDefaults(d)
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// applyDefaults fills zero fields from the daemon defaults plus the
// psi CLI's own fallbacks (query "go").
func (s *JobSpec) applyDefaults(d Defaults) {
	if s.Query == "" {
		s.Query = d.Query
	}
	if s.Query == "" {
		s.Query = "go"
	}
	if s.Workload == "" {
		s.Workload = "<job>"
	}
	if s.Steps == 0 {
		s.Steps = d.Steps
	}
	if s.TimeoutMS == 0 {
		s.TimeoutMS = d.TimeoutMS
	}
	if s.Engine == "" {
		s.Engine = d.Engine
	}
	if s.Limit == 0 {
		s.Limit = d.Limit
	}
}

// validate rejects specs that could never run.
func (s *JobSpec) validate() error {
	if s.Program == "" {
		return errors.New("job spec: program is required")
	}
	if _, err := engine.ParseMode(s.Engine); err != nil {
		return fmt.Errorf("job spec: %w", err)
	}
	if s.Fault != "" {
		if _, err := fault.Parse(s.Fault); err != nil {
			return fmt.Errorf("job spec: bad fault: %w", err)
		}
	}
	if s.Steps < 0 || s.TimeoutMS < 0 || s.Limit < 0 || s.HeartbeatCycles < 0 {
		return errors.New("job spec: budgets must be non-negative")
	}
	return nil
}

// Timeout is the job's wall-clock budget (0 = none).
func (s *JobSpec) Timeout() time.Duration {
	return time.Duration(s.TimeoutMS) * time.Millisecond
}

// Key is the job's compiled-program cache key: a content hash over the
// effective source and query, so byte-identical programs share one
// compiled image regardless of workload label or budgets.
func (s *JobSpec) Key() string {
	h := sha256.New()
	io.WriteString(h, s.source())
	h.Write([]byte{0})
	io.WriteString(h, s.Query)
	return "job:" + hex.EncodeToString(h.Sum(nil)[:16])
}
