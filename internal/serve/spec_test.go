package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parse(t *testing.T, body string, d Defaults) (*JobSpec, error) {
	t.Helper()
	return ParseSpec(strings.NewReader(body), d)
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := parse(t, `{"program": "go :- true.\n"}`, Defaults{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Query != "go" {
		t.Errorf("default query = %q, want go", s.Query)
	}
	if s.Workload != "<job>" {
		t.Errorf("default workload = %q, want <job>", s.Workload)
	}
	if s.Steps != 0 || s.TimeoutMS != 0 {
		t.Errorf("budgets defaulted to %d/%d, want 0/0 without daemon defaults", s.Steps, s.TimeoutMS)
	}
}

func TestParseSpecDaemonDefaults(t *testing.T) {
	d := Defaults{Query: "main", Steps: 5000, TimeoutMS: 250, Engine: "fast", Limit: 3}
	s, err := parse(t, `{"program": "main :- true.\n"}`, d)
	if err != nil {
		t.Fatal(err)
	}
	if s.Query != "main" || s.Steps != 5000 || s.TimeoutMS != 250 || s.Engine != "fast" || s.Limit != 3 {
		t.Errorf("daemon defaults not applied: %+v", s)
	}
	// Explicit spec fields win over daemon defaults.
	s, err = parse(t, `{"program": "go :- true.\n", "query": "go", "steps": 9, "timeout_ms": 9}`, d)
	if err != nil {
		t.Fatal(err)
	}
	if s.Query != "go" || s.Steps != 9 || s.TimeoutMS != 9 {
		t.Errorf("spec fields overridden by defaults: %+v", s)
	}
}

func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"empty program", `{}`},
		{"unknown field", `{"program": "go.", "stepz": 5}`},
		{"wrong schema", `{"schema": "psi-serve-job/v99", "program": "go."}`},
		{"bad engine", `{"program": "go.", "engine": "warp"}`},
		{"bad fault", `{"program": "go.", "fault": "site=nowhere"}`},
		{"negative steps", `{"program": "go.", "steps": -1}`},
		{"negative timeout", `{"program": "go.", "timeout_ms": -1}`},
		{"not json", `program: go`},
	}
	for _, c := range cases {
		if _, err := parse(t, c.body, Defaults{}); err == nil {
			t.Errorf("%s: accepted, want rejection", c.name)
		}
	}
	// The explicit schema tag is accepted when it matches.
	if _, err := parse(t, `{"schema": "psi-serve-job/v1", "program": "go."}`, Defaults{}); err != nil {
		t.Errorf("matching schema rejected: %v", err)
	}
}

// TestSpecKey pins the cache-key contract: the key covers program text
// and query only, so budgets and labels share one compiled image while
// any source change gets its own.
func TestSpecKey(t *testing.T) {
	base := JobSpec{Program: "go :- true.\n", Query: "go", Workload: "a", Steps: 10}
	same := JobSpec{Program: "go :- true.\n", Query: "go", Workload: "b", TimeoutMS: 99}
	if base.Key() != same.Key() {
		t.Error("budgets/workload changed the cache key")
	}
	diffProg := JobSpec{Program: "go :- fail.\n", Query: "go"}
	diffQuery := JobSpec{Program: "go :- true.\n", Query: "other"}
	diffStdlib := JobSpec{Program: "go :- true.\n", Query: "go", Stdlib: true}
	for _, other := range []JobSpec{diffProg, diffQuery, diffStdlib} {
		if base.Key() == other.Key() {
			t.Errorf("distinct job %+v shares base key", other)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Addr != ":8131" || c.Workers <= 0 || c.Queue != 4*c.Workers || c.Programs != 256 {
		t.Errorf("zero-config defaults wrong: %+v", c)
	}
	if got := (Config{Queue: -1}).withDefaults().Queue; got != 0 {
		t.Errorf("Queue -1 (no waiting room) defaulted to %d, want 0", got)
	}
	if (Config{}).DrainTimeout() <= 0 {
		t.Error("default drain timeout not positive")
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "psid.json")
	good := `{"addr": ":0", "workers": 2, "defaults": {"timeout_ms": 100}}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr != ":0" || c.Workers != 2 || c.Defaults.TimeoutMS != 100 {
		t.Errorf("config loaded wrong: %+v", c)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"adr": ":0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("unknown config field accepted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing config file accepted")
	}
}

// TestExampleConfigLoads keeps the checked-in example config in sync
// with the schema.
func TestExampleConfigLoads(t *testing.T) {
	c, err := LoadConfig("../../docs/psid.config.json")
	if err != nil {
		t.Fatalf("docs/psid.config.json does not load: %v", err)
	}
	if c.Workers <= 0 || c.Defaults.TimeoutMS <= 0 {
		t.Errorf("example config should set workers and a default timeout, got %+v", c)
	}
}
