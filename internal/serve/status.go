package serve

import (
	"net/http"

	"repro/internal/engine"
)

// HTTP status mapping — the single source of truth translating the
// engine error taxonomy onto response codes, the serving twin of the
// CLI exit-code contract in internal/engine. TestStatusTableExhaustive
// fails the build when a class exists in engine.Classes() without an
// entry here, so a new taxonomy class cannot silently fall through to
// the 500 fallback.

// StatusClientClosedRequest reports a run ended by the client going away
// (or by a hard drain cancel); the nginx convention for "the response
// has no one left to read it".
const StatusClientClosedRequest = 499

// statusByClass maps every engine error-class name onto its HTTP
// status. Keep in sync with engine.Classes(); the exhaustiveness test
// enforces it in both directions.
var statusByClass = map[string]int{
	"ok":         http.StatusOK,                  // 200: the run completed
	"error":      http.StatusBadRequest,          // 400: generic failure (bad spec, failed setup)
	"malformed":  http.StatusUnprocessableEntity, // 422: program or execution malformed
	"step-limit": http.StatusUnprocessableEntity, // 422: the steps budget ran out
	"deadline":   http.StatusRequestTimeout,      // 408: the wall-clock budget ran out
	"canceled":   StatusClientClosedRequest,      // 499: client gone or drain hard-cancel
	"fault":      http.StatusInternalServerError, // 500: contained machine fault
	"degraded":   http.StatusInternalServerError, // 500: degraded evaluation (harness-level)
	"expired":    http.StatusGatewayTimeout,      // 504: deadline passed before execution (queue shed)
}

// Serving-layer statuses outside the engine taxonomy: admission and
// lifecycle rejections that never reach a machine. The pseudo-class
// names appear in error documents and per-class metrics.
const (
	// ClassSaturated rejects a job because the bounded queue is full
	// (HTTP 429, the backpressure signal).
	ClassSaturated = "saturated"
	// ClassDraining rejects a job because the daemon is shutting down
	// (HTTP 503).
	ClassDraining = "draining"
)

// StatusForClass resolves an engine error-class name (or a serving
// pseudo-class) to its HTTP status. Unknown names get 500 — the
// exhaustiveness test guarantees real classes never take that path.
func StatusForClass(class string) int {
	switch class {
	case ClassSaturated:
		return http.StatusTooManyRequests
	case ClassDraining:
		return http.StatusServiceUnavailable
	}
	if s, ok := statusByClass[class]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// StatusFor classifies an error under the engine taxonomy and resolves
// its HTTP status (nil = 200).
func StatusFor(err error) int {
	return StatusForClass(engine.ClassName(err))
}
