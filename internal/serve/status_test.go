package serve

import (
	"context"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/engine"
)

// TestStatusTableExhaustive is the contract the issue asks for: the
// class → HTTP status table in status.go is the single source of truth,
// and it must cover the engine taxonomy exactly. Adding a class to
// engine.Classes() without mapping it here fails this test; so does a
// stale entry for a class the engine no longer defines.
func TestStatusTableExhaustive(t *testing.T) {
	classes := engine.Classes()
	known := map[string]bool{}
	for _, class := range classes {
		known[class] = true
		if _, ok := statusByClass[class]; !ok {
			t.Errorf("engine class %q has no HTTP status mapping", class)
		}
	}
	for class := range statusByClass {
		if !known[class] {
			t.Errorf("status table maps %q, which engine.Classes() does not define", class)
		}
	}
}

// TestStatusForErrors pins the mapping for representative errors of
// every class, including wrapped forms, so the errors.Is-based
// classification keeps feeding the table correctly.
func TestStatusForErrors(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{fmt.Errorf("x: %w", engine.ErrMalformed), http.StatusUnprocessableEntity},
		{fmt.Errorf("x: %w", engine.ErrStepLimit), http.StatusUnprocessableEntity},
		{fmt.Errorf("x: %w", engine.ErrDeadline), http.StatusRequestTimeout},
		{engine.CtxError(context.Canceled), StatusClientClosedRequest},
		{engine.CtxError(context.DeadlineExceeded), http.StatusRequestTimeout},
		{&engine.FaultError{Site: "mem", Step: 7, Msg: "parity"}, http.StatusInternalServerError},
		{fmt.Errorf("plain failure"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := StatusFor(c.err); got != c.want {
			t.Errorf("StatusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	if got := StatusForClass(ClassSaturated); got != http.StatusTooManyRequests {
		t.Errorf("saturated -> %d, want 429", got)
	}
	if got := StatusForClass(ClassDraining); got != http.StatusServiceUnavailable {
		t.Errorf("draining -> %d, want 503", got)
	}
}

// TestStatusDistinguishesBudgets documents the budget contract: the two
// budget classes are distinguishable by status + termination field even
// though step-limit shares 422 with malformed.
func TestStatusDistinguishesBudgets(t *testing.T) {
	if StatusForClass("deadline") == StatusForClass("step-limit") {
		t.Error("deadline and step-limit should map to distinct statuses (408 vs 422)")
	}
	if StatusForClass("ok") != http.StatusOK || StatusForClass("fault") != http.StatusInternalServerError {
		t.Error("ok/fault anchors moved")
	}
}
