package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Streamed responses: one event per solution as the machine finds it,
// optional heartbeats while it searches, and a terminal report event
// carrying the full psi-run-report/v1 document. The wire format is
// NDJSON (one JSON object per line) by default, or Server-Sent Events
// when the client asks with `Accept: text/event-stream`; the event
// payloads are identical.

// StreamEvent is one streamed event. Event selects which fields are
// populated:
//
//	"solution":  N, Bindings
//	"heartbeat": Cycles, SimNS, Inferences
//	"error":     Class, Status, Error (the run ended abnormally)
//	"report":    Report (always the final event of a run)
type StreamEvent struct {
	Event      string            `json:"event"`
	N          int               `json:"n,omitempty"`
	Bindings   map[string]string `json:"bindings,omitempty"`
	Cycles     int64             `json:"cycles,omitempty"`
	SimNS      int64             `json:"sim_ns,omitempty"`
	Inferences int64             `json:"inferences,omitempty"`
	Class      string            `json:"class,omitempty"`
	Status     int               `json:"status,omitempty"`
	Error      string            `json:"error,omitempty"`
	Report     *obs.RunReport    `json:"report,omitempty"`
}

// eventWriter renders StreamEvents onto a response, flushing after each
// so solutions reach the client as the simulation produces them.
type eventWriter struct {
	w     http.ResponseWriter
	flush http.Flusher
	sse   bool
	err   error // first write failure; subsequent writes are dropped
}

func newEventWriter(w http.ResponseWriter, r *http.Request) *eventWriter {
	ew := &eventWriter{w: w}
	ew.flush, _ = w.(http.Flusher)
	ew.sse = strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if ew.sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	return ew
}

// write emits one event; on SSE the event name doubles as the SSE event
// field. Errors stick: the first failed write marks the client gone.
func (ew *eventWriter) write(ev StreamEvent) error {
	if ew.err != nil {
		return ew.err
	}
	b, err := json.Marshal(ev)
	if err != nil {
		ew.err = err
		return err
	}
	if ew.sse {
		_, err = ew.w.Write([]byte("event: " + ev.Event + "\ndata: " + string(b) + "\n\n"))
	} else {
		_, err = ew.w.Write(append(b, '\n'))
	}
	if err != nil {
		ew.err = err
		return err
	}
	if ew.flush != nil {
		ew.flush.Flush()
	}
	return nil
}

// streamSolve runs the job, streaming each solution (and heartbeat) as
// an event and closing with an error event (for abnormal terminations)
// plus the terminal report event. The HTTP status is always 200 — the
// stream was accepted; how the run ended travels in the events, with
// the same class → status mapping quoted in the error event.
func (s *Server) streamSolve(ctx context.Context, w http.ResponseWriter, r *http.Request, spec *JobSpec, wj *watchedJob) {
	ew := newEventWriter(w, r)
	w.Header().Set("X-Psi-Schema", obs.ReportSchema)
	w.WriteHeader(http.StatusOK)
	if ew.flush != nil {
		ew.flush.Flush()
	}

	emit := func(n int, bindings map[string]string) error {
		return ew.write(StreamEvent{Event: "solution", N: n, Bindings: bindings})
	}
	hb := func(h core.Heartbeat) {
		// Heartbeats are best-effort; a failed write surfaces on the
		// next solution or report write.
		ew.write(StreamEvent{
			Event:      "heartbeat",
			Cycles:     h.Steps,
			SimNS:      h.SimNS,
			Inferences: h.Inferences,
		})
	}

	res, err := s.execute(ctx, spec, wj, emit, hb)
	if err != nil {
		class := engine.ClassName(err)
		classMetric(class)
		ew.write(StreamEvent{
			Event:  "error",
			Class:  class,
			Status: StatusFor(err),
			Error:  err.Error(),
		})
		return
	}
	class := engine.ClassName(res.runErr)
	classMetric(class)
	if res.runErr != nil {
		// Best-effort: if the run ended because the client left, this
		// write fails silently into the closed connection.
		ew.write(StreamEvent{
			Event:  "error",
			Class:  class,
			Status: StatusForClass(class),
			Error:  res.runErr.Error(),
		})
	}
	ew.write(StreamEvent{Event: "report", Report: res.report})
}
