package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The stuck-session watchdog. Sessions normally end themselves: the
// engine's Next polls the job context every CheckEvery steps, so a
// deadline or cancel lands within ~64K simulated steps. The watchdog is
// the backstop for the runs where that discipline fails — a session
// wedged inside one enormous instruction dispatch, a simulator bug that
// stops consuming budget, a future engine that forgets to poll. It
// patrols the in-flight registry on a wall-clock tick and hard-cancels
// any session that overstayed:
//
//   - a job with a wall budget is killed once it exceeds grace × budget
//     (grace > 1, so the watchdog only ever fires after the session had
//     every chance to end itself with the deadline class);
//   - a job with no wall budget is killed after the MaxStuck cap, when
//     one is configured (0 leaves unbudgeted jobs exempt).
//
// The kill travels through the same cancel seam a drain hard-cancel
// uses — the job context's CancelFunc feeding engine.Session.Next — so
// the session ends with the canceled class and a full report; the
// serving layer then stamps the report's fault block with site
// "watchdog" and dumps the telemetry flight ring into it, so the
// incident ships its own post-mortem. Every kill bumps the
// psi_watchdog_kills_total metric.
//
// The patrol goroutine runs only while watched jobs are in flight: it
// starts on the 0→1 registry transition and exits when the registry
// empties, so an idle (or test-constructed) server holds no background
// goroutine — which is also what lets the soak harness assert
// goroutine-leak freedom.

// watchedJob is one in-flight run under watchdog protection.
type watchedJob struct {
	id       int64
	workload string
	start    time.Time
	killAt   time.Time // zero = exempt (unbudgeted, no MaxStuck cap)
	cancel   func()
	killed   atomic.Bool
}

// Killed reports whether the watchdog hard-canceled this job.
func (j *watchedJob) Killed() bool { return j != nil && j.killed.Load() }

// watchdog is the in-flight registry plus its patrol loop.
type watchdog struct {
	grace    float64
	maxStuck time.Duration
	interval time.Duration

	mu        sync.Mutex
	seq       int64
	jobs      map[int64]*watchedJob
	patroling bool

	kills atomic.Int64
}

func newWatchdog(grace float64, maxStuck, interval time.Duration) *watchdog {
	return &watchdog{
		grace:    grace,
		maxStuck: maxStuck,
		interval: interval,
		jobs:     map[int64]*watchedJob{},
	}
}

// admit registers one starting job. budget is the job's wall-clock
// budget (0 = none); cancel is the job context's CancelFunc — the same
// seam a drain hard-cancel pulls.
func (w *watchdog) admit(workload string, start time.Time, budget time.Duration, cancel func()) *watchedJob {
	var killAt time.Time
	switch {
	case budget > 0:
		killAt = start.Add(time.Duration(w.grace * float64(budget)))
	case w.maxStuck > 0:
		killAt = start.Add(w.maxStuck)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	j := &watchedJob{id: w.seq, workload: workload, start: start, killAt: killAt, cancel: cancel}
	w.jobs[j.id] = j
	if !w.patroling {
		w.patroling = true
		go w.patrol()
	}
	return j
}

// done removes a finished job from the registry.
func (w *watchdog) done(j *watchedJob) {
	if j == nil {
		return
	}
	w.mu.Lock()
	delete(w.jobs, j.id)
	w.mu.Unlock()
}

// patrol sweeps the registry every interval, killing overstayers, and
// exits once the registry is empty.
func (w *watchdog) patrol() {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for range t.C {
		w.mu.Lock()
		now := time.Now()
		for _, j := range w.jobs {
			if !j.killAt.IsZero() && now.After(j.killAt) && j.killed.CompareAndSwap(false, true) {
				j.cancel()
				w.kills.Add(1)
				telemetry.Default.Counter("psi_watchdog_kills_total",
					"stuck sessions hard-canceled by the watchdog").Inc()
			}
		}
		if len(w.jobs) == 0 {
			w.patroling = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
	}
}

// Kills reports how many sessions the watchdog has hard-canceled.
func (w *watchdog) Kills() int64 { return w.kills.Load() }
