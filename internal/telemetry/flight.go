package telemetry

// Flight recorder: a fixed-size ring of the most recent telemetry
// events of one session — Step slices with their outcomes, heartbeats,
// mode downgrades, and finally the fault that ended the run. When a
// chaos run aborts with engine.ErrFault (exit 7), the ring is dumped
// into the run report's fault block, so the incident ships its own
// post-mortem instead of just a classification.
//
// Events are keyed by the simulated step count, which is deterministic
// for a given program and fault plan — the dump is reproducible.

// DefaultFlightSize is the ring capacity the CLIs use. Sessions emit a
// handful of events per Step slice, so 64 entries hold the recent past
// of even a long sliced run.
const DefaultFlightSize = 64

// FlightEvent is one recorded event.
type FlightEvent struct {
	// Seq is the global sequence number of the event in this session
	// (monotonic; reveals how many events the ring dropped).
	Seq int64 `json:"seq"`
	// Step is the simulated step count when the event was recorded.
	Step int64 `json:"step"`
	// Kind classifies the event: "step", "solution", "yield",
	// "exhausted", "error", "fault", "heartbeat", "mode-downgrade".
	Kind string `json:"kind"`
	// Detail is a short deterministic description (budget, fault site).
	Detail string `json:"detail,omitempty"`
}

// Flight is the ring. Like the machine it instruments it is not safe
// for concurrent use; each session owns its own recorder.
type Flight struct {
	ring []FlightEvent
	n    int64 // events ever recorded
}

// NewFlight returns a recorder keeping the last capacity events
// (capacity <= 0 selects DefaultFlightSize).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightSize
	}
	return &Flight{ring: make([]FlightEvent, 0, capacity)}
}

// Record appends an event, evicting the oldest once the ring is full.
func (f *Flight) Record(step int64, kind, detail string) {
	e := FlightEvent{Seq: f.n, Step: step, Kind: kind, Detail: detail}
	f.n++
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
		return
	}
	f.ring[int(e.Seq)%cap(f.ring)] = e
}

// Len reports how many events the ring currently holds.
func (f *Flight) Len() int { return len(f.ring) }

// Recorded reports how many events were ever recorded (>= Len once the
// ring wrapped).
func (f *Flight) Recorded() int64 { return f.n }

// Events returns the retained events oldest-first.
func (f *Flight) Events() []FlightEvent {
	out := make([]FlightEvent, 0, len(f.ring))
	if f.n > int64(cap(f.ring)) {
		// The ring wrapped: the oldest retained event sits right after
		// the most recently written slot.
		start := int(f.n % int64(cap(f.ring)))
		out = append(out, f.ring[start:]...)
		out = append(out, f.ring[:start]...)
		return out
	}
	return append(out, f.ring...)
}

// Reset clears the recorder for reuse by another session.
func (f *Flight) Reset() {
	f.ring = f.ring[:0]
	f.n = 0
}
