package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics registry: process-wide counters, gauges and histograms about
// the simulation (steps, inferences, cache hit ratios, session
// durations, degraded cells), with Prometheus text exposition (format
// 0.0.4) mounted at /metrics on the CLIs' -http debug listener, next to
// /debug/pprof and /debug/vars. Metrics are host-side aggregates; they
// never feed back into simulated output.

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The value is stored in
// thousandths so ratios survive the integer representation. Safe for
// concurrent use.
type Gauge struct{ milli atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.milli.Store(int64(v * 1000)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return float64(g.milli.Load()) / 1000 }

// Histogram counts observations into cumulative buckets (Prometheus
// semantics: each bucket counts observations <= its upper bound, plus
// an implicit +Inf bucket). Safe for concurrent use.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last = +Inf
	sum    float64
	n      int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry, or use the process-wide Default.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// Default is the process-wide registry the simulator layers record
// into; ServeDebug's /metrics endpoint exposes it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Counter returns the named counter, creating it on first use. The
// first caller's help string wins.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given cumulative bucket upper bounds (must be sorted ascending;
// +Inf is implicit). Later callers get the existing histogram
// regardless of their bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.histograms[name] = h
		r.help[name] = help
	}
	return h
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (0.0.4), sorted by name for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if help := r.help[n]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", n, help)
		}
		switch {
		case r.counters[n] != nil:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].Value())
		case r.gauges[n] != nil:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n,
				strconv.FormatFloat(r.gauges[n].Value(), 'g', -1, 64))
		default:
			h := r.histograms[n]
			fmt.Fprintf(w, "# TYPE %s histogram\n", n)
			h.mu.Lock()
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, strconv.FormatFloat(b, 'g', -1, 64), cum)
			}
			cum += h.counts[len(h.bounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
			fmt.Fprintf(w, "%s_sum %s\n", n, strconv.FormatFloat(h.sum, 'g', -1, 64))
			fmt.Fprintf(w, "%s_count %d\n", n, h.n)
			h.mu.Unlock()
		}
	}
	r.mu.Unlock()
}

// Handler serves the registry as a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
