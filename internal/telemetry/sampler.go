package telemetry

// DefaultSampleStride is the sampling profiler's default stride in
// simulated cycles. A prime stride avoids locking onto the periodic
// predicate-switch patterns of loopy workloads (the same aliasing
// argument hardware profilers make for prime sampling intervals); 509
// cycles keeps the boundary work (one predicate lookup per sample)
// far below 1% of the fast path's per-cycle cost.
const DefaultSampleStride = 509

// ShareTolerance is the stated accuracy bound of the sampling profiler:
// on the evaluation workloads, every predicate's sampled cycle share is
// within this absolute distance of the exact profiler's share for the
// same run. The differential suite (TestSamplingDifferentialTable1) and
// the bench-obs gate both enforce it; DESIGN.md "Telemetry" derives it.
const ShareTolerance = 0.05

// SamplingProfiler attributes simulated cycles to predicates
// statistically. The machine calls Sample at a fixed cycle stride (and
// once more at every accounting flush), attributing all cycles since
// the previous sample to the predicate the code pointer is executing
// in. Totals therefore always sum to the machine's exact Steps count at
// observation boundaries; only the per-predicate split is statistical.
//
// It implements micro.SampleSink. Not safe for concurrent use — like
// the machine it instruments, one profiler belongs to one session.
type SamplingProfiler struct {
	stride  int64
	samples int64
	total   int64
	counts  []int64 // index = predicate id + 1 (0 = no predicate)
}

// NewSamplingProfiler returns a profiler sampling every stride cycles
// (stride <= 0 selects DefaultSampleStride). Pass it as
// core.Config.Sample; unlike the exact profiler it does not force the
// exact accounting path.
func NewSamplingProfiler(stride int64) *SamplingProfiler {
	if stride <= 0 {
		stride = DefaultSampleStride
	}
	return &SamplingProfiler{stride: stride}
}

// Sample implements micro.SampleSink: cycles executed since the
// previous sample are charged to predicate pred (-1 = query glue and
// runtime stubs).
func (p *SamplingProfiler) Sample(pred int, cycles int64) {
	i := pred + 1
	if i < 0 {
		i = 0
	}
	for i >= len(p.counts) {
		p.counts = append(p.counts, 0)
	}
	p.counts[i] += cycles
	p.total += cycles
	p.samples++
}

// Stride reports the configured sampling stride in cycles.
func (p *SamplingProfiler) Stride() int64 { return p.stride }

// Samples reports how many samples were taken.
func (p *SamplingProfiler) Samples() int64 { return p.samples }

// Total reports the attributed cycle total. At every observation
// boundary (Solutions.Step returning) it equals the machine's exact
// Stats().Steps: the flush tap attributes the tail.
func (p *SamplingProfiler) Total() int64 { return p.total }

// Each visits every predicate with a nonzero attributed count, in
// predicate-id order (-1 first).
func (p *SamplingProfiler) Each(fn func(pred int, cycles int64)) {
	for i, n := range p.counts {
		if n != 0 {
			fn(i-1, n)
		}
	}
}

// Reset clears the collected attribution so the profiler can be reused
// for another run.
func (p *SamplingProfiler) Reset() {
	p.samples = 0
	p.total = 0
	for i := range p.counts {
		p.counts[i] = 0
	}
}
