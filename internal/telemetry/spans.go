package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span tracing: host-time slices of the simulator's own work (compile,
// session, Step(budget) slices, harness cells), exported in the Chrome
// trace-event format so a run can be opened in Perfetto or
// chrome://tracing. Spans measure the host, not the simulation — they
// never touch simulated statistics, which stay byte-identical with
// tracing attached.

// Span is one complete ("ph":"X") trace event. Timestamps and durations
// are microseconds, relative to the owning SpanLog's start, per the
// trace-event format.
type Span struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   int64             `json:"dur"`
	PID   int64             `json:"pid"`
	TID   int64             `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// Trace is the JSON-object form of the Chrome trace-event format — the
// exact document `-trace-out` writes.
type Trace struct {
	TraceEvents     []Span `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit,omitempty"`
}

// SpanLog collects spans from one process. Safe for concurrent use:
// parallel harness cells append from worker goroutines.
type SpanLog struct {
	t0    time.Time
	mu    sync.Mutex
	spans []Span
}

// NewSpanLog returns an empty log; span timestamps are relative to now.
func NewSpanLog() *SpanLog { return &SpanLog{t0: time.Now()} }

// Start opens a span and returns the function that completes it. The
// span is appended when the returned function is called; args may be
// nil. tid groups spans into trace rows (e.g. one row per harness
// cell); pid is always 1.
func (l *SpanLog) Start(name, cat string, tid int64) func(args map[string]string) {
	start := time.Now()
	return func(args map[string]string) {
		l.Complete(name, cat, tid, start, args)
	}
}

// Complete appends a span that started at start and ends now.
func (l *SpanLog) Complete(name, cat string, tid int64, start time.Time, args map[string]string) {
	sp := Span{
		Name:  name,
		Cat:   cat,
		Phase: "X",
		TS:    start.Sub(l.t0).Microseconds(),
		Dur:   time.Since(start).Microseconds(),
		PID:   1,
		TID:   tid,
		Args:  args,
	}
	l.mu.Lock()
	l.spans = append(l.spans, sp)
	l.mu.Unlock()
}

// Len reports how many spans have been recorded.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// Trace snapshots the recorded spans as a trace-event document.
func (l *SpanLog) Trace() *Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return &Trace{TraceEvents: out, DisplayTimeUnit: "ms"}
}

// WriteJSON writes the trace-event document (indented, trailing
// newline) — the bytes behind the CLIs' -trace-out flag.
func (l *SpanLog) WriteJSON(w io.Writer) error {
	return l.Trace().WriteJSON(w)
}

// WriteJSON serializes the document.
func (t *Trace) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace decodes a trace-event document, the inverse of WriteJSON
// (round-trip locked by the telemetry tests).
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}
