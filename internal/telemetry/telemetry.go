// Package telemetry is the always-on observability layer of the PSI
// reproduction: instrumentation cheap enough to stay attached while the
// engine runs in its fast (batched) accounting mode.
//
// The exact observability hooks in internal/obs consume every simulated
// cycle (a micro.Sink per record), which forces the engine back onto the
// exact per-cycle path. This package provides the statistical
// counterparts whose cost is independent of the cycle rate:
//
//   - SamplingProfiler: per-predicate cycle attribution from stride
//     samples plus accounting-flush taps, instead of the exact
//     per-cycle PredSink (see core.Config.Sample);
//   - SpanLog: host-time spans of compiles, sessions, Step(budget)
//     slices and harness cells, exported as Chrome trace-event JSON
//     (viewable in Perfetto / chrome://tracing);
//   - Registry: process-wide counters, gauges and histograms with
//     Prometheus-style text exposition (mounted at /metrics next to
//     /debug/pprof and /debug/vars);
//   - Flight: a fixed-size ring of recent per-session events, dumped
//     into fault reports so a chaos run leaves a post-mortem.
//
// The package is deliberately a leaf: it imports only the standard
// library, so every layer of the simulator (core, obs, harness, CLIs)
// can depend on it without cycles.
package telemetry
