package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- sampling profiler ---

func TestSamplerAttribution(t *testing.T) {
	p := NewSamplingProfiler(0)
	if p.Stride() != DefaultSampleStride {
		t.Fatalf("default stride = %d, want %d", p.Stride(), DefaultSampleStride)
	}
	p.Sample(2, 100)
	p.Sample(0, 50)
	p.Sample(2, 25)
	p.Sample(-1, 7) // query glue
	if p.Total() != 182 {
		t.Errorf("Total = %d, want 182", p.Total())
	}
	if p.Samples() != 4 {
		t.Errorf("Samples = %d, want 4", p.Samples())
	}
	got := map[int]int64{}
	var order []int
	p.Each(func(pred int, cycles int64) {
		got[pred] = cycles
		order = append(order, pred)
	})
	want := map[int]int64{-1: 7, 0: 50, 2: 125}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Each visited %v, want %v", got, want)
	}
	if !sortedAsc(order) {
		t.Errorf("Each order %v, want ascending predicate ids", order)
	}
	p.Reset()
	if p.Total() != 0 || p.Samples() != 0 {
		t.Errorf("after Reset: Total %d Samples %d, want 0 0", p.Total(), p.Samples())
	}
	p.Each(func(pred int, cycles int64) {
		t.Errorf("Each after Reset visited pred %d (%d cycles)", pred, cycles)
	})
}

func sortedAsc(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// --- span log / Chrome trace-event export ---

// TestTraceGolden locks the exact trace-event document shape Perfetto
// and chrome://tracing consume: complete ("X") events with microsecond
// ts/dur, pid/tid lanes and string args.
func TestTraceGolden(t *testing.T) {
	tr := &Trace{
		DisplayTimeUnit: "ms",
		TraceEvents: []Span{
			{Name: "table1/nreverse (30)", Cat: "cell", Phase: "X", TS: 12, Dur: 340, PID: 1, TID: 1,
				Args: map[string]string{"status": "ok"}},
			{Name: "step", Cat: "step", Phase: "X", TS: 400, Dur: 29, PID: 1, TID: 0},
		},
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "traceEvents": [
    {
      "name": "table1/nreverse (30)",
      "cat": "cell",
      "ph": "X",
      "ts": 12,
      "dur": 340,
      "pid": 1,
      "tid": 1,
      "args": {
        "status": "ok"
      }
    },
    {
      "name": "step",
      "cat": "step",
      "ph": "X",
      "ts": 400,
      "dur": 29,
      "pid": 1,
      "tid": 0
    }
  ],
  "displayTimeUnit": "ms"
}
`
	if buf.String() != golden {
		t.Errorf("trace-event document diverged from the golden:\n--- got\n%s--- want\n%s", buf.String(), golden)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	l := NewSpanLog()
	done := l.Start("compile", "session", 3)
	done(map[string]string{"workload": "qsort"})
	l.Complete("step", "step", 0, time.Now().Add(-time.Millisecond), nil)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := l.Trace()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
	for _, sp := range got.TraceEvents {
		if sp.Phase != "X" || sp.PID != 1 {
			t.Errorf("span %q: phase %q pid %d, want X/1", sp.Name, sp.Phase, sp.PID)
		}
	}
}

// TestSpanLogConcurrent exercises the log from parallel writers (the
// harness appends cell spans from its worker pool); run with -race.
func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				done := l.Start("cell", "cell", int64(w))
				done(nil)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Errorf("Len = %d, want 400", l.Len())
	}
}

// --- metrics registry ---

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("psi_runs_total", "completed simulated runs").Add(3)
	r.Counter("psi_runs_total", "ignored duplicate help").Inc()
	r.Gauge("psi_cache_hit_ratio", "overall cache hit ratio").Set(0.875)
	h := r.Histogram("psi_session_duration_seconds", "simulated session wall time", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if h.Count() != 3 {
		t.Errorf("histogram Count = %d, want 3", h.Count())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	const golden = `# HELP psi_cache_hit_ratio overall cache hit ratio
# TYPE psi_cache_hit_ratio gauge
psi_cache_hit_ratio 0.875
# HELP psi_runs_total completed simulated runs
# TYPE psi_runs_total counter
psi_runs_total 4
# HELP psi_session_duration_seconds simulated session wall time
# TYPE psi_session_duration_seconds histogram
psi_session_duration_seconds_bucket{le="0.1"} 1
psi_session_duration_seconds_bucket{le="1"} 2
psi_session_duration_seconds_bucket{le="+Inf"} 3
psi_session_duration_seconds_sum 5.55
psi_session_duration_seconds_count 3
`
	if buf.String() != golden {
		t.Errorf("exposition diverged from the golden:\n--- got\n%s--- want\n%s", buf.String(), golden)
	}
}

// TestRegistryConcurrent hammers one registry from parallel writers and
// scrapers; run with -race. The final counts must not lose updates.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	// Register up front so every scrape, even one that fires before the
	// first writer's increment, sees all three families.
	r.Counter("c", "")
	r.Gauge("g", "")
	r.Histogram("h", "", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Set(float64(i))
				r.Histogram("h", "", []float64{10, 100}).Observe(float64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			r.WritePrometheus(&buf)
			if !strings.Contains(buf.String(), "# TYPE c counter") {
				t.Error("scrape lost the counter")
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", "", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// --- flight recorder ---

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(int64(i*100), "step", "")
	}
	if f.Len() != 4 {
		t.Errorf("Len = %d, want 4", f.Len())
	}
	if f.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", f.Recorded())
	}
	ev := f.Events()
	if len(ev) != 4 {
		t.Fatalf("Events returned %d entries, want 4", len(ev))
	}
	for i, e := range ev {
		wantSeq := int64(6 + i)
		if e.Seq != wantSeq || e.Step != wantSeq*100 {
			t.Errorf("Events[%d] = {Seq %d, Step %d}, want {Seq %d, Step %d}",
				i, e.Seq, e.Step, wantSeq, wantSeq*100)
		}
	}
	f.Reset()
	if f.Len() != 0 || f.Recorded() != 0 || len(f.Events()) != 0 {
		t.Errorf("after Reset: Len %d Recorded %d Events %d, want all 0",
			f.Len(), f.Recorded(), len(f.Events()))
	}
}

func TestFlightPartialFill(t *testing.T) {
	f := NewFlight(0)
	if cap(f.ring) != DefaultFlightSize {
		t.Errorf("default capacity = %d, want %d", cap(f.ring), DefaultFlightSize)
	}
	f.Record(10, "step", "budget=100")
	f.Record(20, "solution", "")
	ev := f.Events()
	if len(ev) != 2 || ev[0].Kind != "step" || ev[1].Kind != "solution" {
		t.Errorf("Events = %+v, want the two recorded events oldest-first", ev)
	}
	if ev[0].Detail != "budget=100" {
		t.Errorf("Detail = %q, want %q", ev[0].Detail, "budget=100")
	}
}
