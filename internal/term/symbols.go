package term

import "sync"

// Symbols interns atom and functor names to dense 24-bit indices that fit
// in the symbol field of a PSI functor word. A single table is shared by
// the reader, the KL0 loader and the DEC-10 engine so that both engines
// agree on constants.
//
// The table is safe for concurrent use: machines sharing one compiled
// program image may intern new symbols at run time (number/atom
// conversion built-ins, findall copies), so the map is guarded. Indices
// are handed out in interning order; they carry no meaning beyond
// identity, so concurrent interleavings never change observable results.
type Symbols struct {
	mu    sync.RWMutex
	names []string
	index map[string]uint32
}

// NewSymbols returns an empty table with the handful of symbols every
// program needs pre-interned at fixed indices.
func NewSymbols() *Symbols {
	s := &Symbols{index: make(map[string]uint32)}
	// Fixed well-known symbols; keep in sync with the Sym* constants.
	for _, n := range []string{"[]", ".", "true", "fail", ",", "-"} {
		s.Intern(n)
	}
	return s
}

// Well-known symbol indices guaranteed by NewSymbols.
const (
	SymEmptyList uint32 = iota
	SymDot
	SymTrue
	SymFail
	SymComma
	SymMinus
)

// Intern returns the index for name, adding it if new.
func (s *Symbols) Intern(name string) uint32 {
	s.mu.RLock()
	i, ok := s.index[name]
	s.mu.RUnlock()
	if ok {
		return i
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.index[name]; ok {
		return i
	}
	i = uint32(len(s.names))
	if i > 0xffffff {
		panic("term: symbol table overflow (more than 2^24 symbols)")
	}
	s.names = append(s.names, name)
	s.index[name] = i
	return i
}

// Lookup returns the index for name without interning.
func (s *Symbols) Lookup(name string) (uint32, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.index[name]
	return i, ok
}

// Name returns the string for an interned index.
func (s *Symbols) Name(i uint32) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(i) >= len(s.names) {
		return "<sym?>"
	}
	return s.names[i]
}

// Len reports how many symbols are interned.
func (s *Symbols) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}
