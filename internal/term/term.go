// Package term provides the source-level Prolog term representation shared
// by the reader, the KL0 compiler, the DEC-10 baseline engine and answer
// reporting. Terms are immutable trees; variables are identified by name
// and occurrence so that the compilers can classify them.
package term

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates term variants.
type Kind uint8

// Term kinds.
const (
	Var Kind = iota
	Atom
	Int
	Compound
)

// Term is a source-level Prolog term.
//
// Kind Var:      Name holds the variable name ("_" for anonymous).
// Kind Atom:     Functor holds the atom name.
// Kind Int:      N holds the value.
// Kind Compound: Functor and Args; lists use functor "." with two args and
// the empty list is the atom "[]".
type Term struct {
	Kind    Kind
	Functor string
	N       int64
	Args    []*Term
	Name    string
}

// NewVar returns a variable term.
func NewVar(name string) *Term { return &Term{Kind: Var, Name: name} }

// NewAtom returns an atom term.
func NewAtom(name string) *Term { return &Term{Kind: Atom, Functor: name} }

// NewInt returns an integer term.
func NewInt(v int64) *Term { return &Term{Kind: Int, N: v} }

// NewCompound returns a compound term. With no arguments it degenerates to
// an atom.
func NewCompound(functor string, args ...*Term) *Term {
	if len(args) == 0 {
		return NewAtom(functor)
	}
	return &Term{Kind: Compound, Functor: functor, Args: args}
}

// EmptyList is the atom [].
func EmptyList() *Term { return NewAtom("[]") }

// Cons builds the list cell '.'(head, tail).
func Cons(head, tail *Term) *Term { return NewCompound(".", head, tail) }

// FromList builds a proper list term from elements.
func FromList(elems ...*Term) *Term {
	t := EmptyList()
	for i := len(elems) - 1; i >= 0; i-- {
		t = Cons(elems[i], t)
	}
	return t
}

// IntList builds a proper list of integers.
func IntList(vs ...int64) *Term {
	elems := make([]*Term, len(vs))
	for i, v := range vs {
		elems[i] = NewInt(v)
	}
	return FromList(elems...)
}

// IsEmptyList reports whether t is the atom [].
func (t *Term) IsEmptyList() bool { return t.Kind == Atom && t.Functor == "[]" }

// IsCons reports whether t is a './2' list cell.
func (t *Term) IsCons() bool {
	return t.Kind == Compound && t.Functor == "." && len(t.Args) == 2
}

// IsAnonymous reports whether t is the anonymous variable.
func (t *Term) IsAnonymous() bool { return t.Kind == Var && t.Name == "_" }

// Arity reports the number of arguments (0 for non-compound terms).
func (t *Term) Arity() int {
	if t.Kind == Compound {
		return len(t.Args)
	}
	return 0
}

// Indicator returns the predicate indicator "name/arity" for atoms and
// compound terms and a diagnostic form otherwise.
func (t *Term) Indicator() string {
	switch t.Kind {
	case Atom:
		return t.Functor + "/0"
	case Compound:
		return fmt.Sprintf("%s/%d", t.Functor, len(t.Args))
	default:
		return fmt.Sprintf("<%s>", t.String())
	}
}

// ListElems flattens a proper list into its elements. ok is false when the
// term is not a proper list.
func (t *Term) ListElems() (elems []*Term, ok bool) {
	for t.IsCons() {
		elems = append(elems, t.Args[0])
		t = t.Args[1]
	}
	if !t.IsEmptyList() {
		return nil, false
	}
	return elems, true
}

// Equal reports structural equality; variables compare by name.
func (t *Term) Equal(o *Term) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case Var:
		return t.Name == o.Name
	case Atom:
		return t.Functor == o.Functor
	case Int:
		return t.N == o.N
	case Compound:
		if t.Functor != o.Functor || len(t.Args) != len(o.Args) {
			return false
		}
		for i := range t.Args {
			if !t.Args[i].Equal(o.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Vars returns the distinct variable names in order of first occurrence,
// excluding the anonymous variable.
func (t *Term) Vars() []string {
	var names []string
	seen := map[string]bool{}
	var walk func(*Term)
	walk = func(t *Term) {
		switch t.Kind {
		case Var:
			if t.Name != "_" && !seen[t.Name] {
				seen[t.Name] = true
				names = append(names, t.Name)
			}
		case Compound:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walk(t)
	return names
}

// Rename returns a copy of t with every variable renamed through subst;
// variables absent from subst are kept.
func (t *Term) Rename(subst map[string]string) *Term {
	switch t.Kind {
	case Var:
		if n, ok := subst[t.Name]; ok {
			return NewVar(n)
		}
		return t
	case Compound:
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = a.Rename(subst)
		}
		return &Term{Kind: Compound, Functor: t.Functor, Args: args}
	default:
		return t
	}
}

// String writes the term in standard Prolog notation (lists bracketed,
// operators not reconstructed, atoms quoted when necessary).
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.Kind {
	case Var:
		b.WriteString(t.Name)
	case Int:
		fmt.Fprintf(b, "%d", t.N)
	case Atom:
		b.WriteString(QuoteAtom(t.Functor))
	case Compound:
		if t.IsCons() {
			t.writeList(b)
			return
		}
		if len(t.Args) == 2 && infixFunctors[t.Functor] {
			t.writeOperand(b, t.Args[0])
			b.WriteString(t.Functor)
			t.writeOperand(b, t.Args[1])
			return
		}
		b.WriteString(QuoteAtom(t.Functor))
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.write(b)
		}
		b.WriteByte(')')
	}
}

// infixFunctors are printed in operator notation, as DEC-10 Prolog's
// write/1 does. Operands that are themselves operator terms are
// parenthesized, so the output always reads back unambiguously.
var infixFunctors = map[string]bool{
	"-": true, "+": true, "*": true, "/": true, "//": true, "mod": true,
	"=": true, "<": true, ">": true, ">=": true, "=<": true,
	":-": true, "->": true, ";": true,
}

func (t *Term) writeOperand(b *strings.Builder, a *Term) {
	if a.Kind == Compound && !a.IsCons() && infixFunctors[a.Functor] && len(a.Args) == 2 {
		b.WriteByte('(')
		a.write(b)
		b.WriteByte(')')
		return
	}
	a.write(b)
}

func (t *Term) writeList(b *strings.Builder) {
	b.WriteByte('[')
	first := true
	for t.IsCons() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		t.Args[0].write(b)
		t = t.Args[1]
	}
	if !t.IsEmptyList() {
		b.WriteByte('|')
		t.write(b)
	}
	b.WriteByte(']')
}

// QuoteAtom renders an atom name with quotes if it is not a plain
// unquoted atom.
func QuoteAtom(name string) string {
	if name == "[]" || name == "{}" || name == "!" || name == ";" {
		return name
	}
	if isAlphaAtom(name) || isSymbolAtom(name) {
		return name
	}
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range name {
		switch r {
		case '\'':
			b.WriteString("\\'")
		case '\\':
			b.WriteString("\\\\")
		case '\n':
			b.WriteString("\\n")
		case '\t':
			b.WriteString("\\t")
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

func isAlphaAtom(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if c < 'a' || c > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

const symbolChars = "+-*/\\^<>=~:.?@#&$"

func isSymbolAtom(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune(symbolChars, rune(s[i])) {
			return false
		}
	}
	return true
}

// Sorted is a helper for deterministic output of term sets in tests and
// reports: it sorts a slice of terms by their printed form.
func Sorted(ts []*Term) []*Term {
	out := append([]*Term(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
