package term

import (
	"testing"
)

func TestConstructors(t *testing.T) {
	a := NewAtom("foo")
	if a.Kind != Atom || a.Functor != "foo" {
		t.Errorf("NewAtom: %+v", a)
	}
	v := NewVar("X")
	if v.Kind != Var || v.Name != "X" {
		t.Errorf("NewVar: %+v", v)
	}
	n := NewInt(-42)
	if n.Kind != Int || n.N != -42 {
		t.Errorf("NewInt: %+v", n)
	}
	c := NewCompound("f", a, v)
	if c.Kind != Compound || c.Arity() != 2 {
		t.Errorf("NewCompound: %+v", c)
	}
	if d := NewCompound("g"); d.Kind != Atom {
		t.Errorf("zero-arg compound should be atom: %+v", d)
	}
}

func TestListHelpers(t *testing.T) {
	l := IntList(1, 2, 3)
	elems, ok := l.ListElems()
	if !ok || len(elems) != 3 || elems[0].N != 1 || elems[2].N != 3 {
		t.Errorf("ListElems = %v %v", elems, ok)
	}
	if !EmptyList().IsEmptyList() {
		t.Error("EmptyList not empty")
	}
	if _, ok := Cons(NewInt(1), NewVar("T")).ListElems(); ok {
		t.Error("partial list should not be proper")
	}
	if !l.IsCons() {
		t.Error("IsCons failed")
	}
}

func TestEqual(t *testing.T) {
	a := NewCompound("f", NewInt(1), FromList(NewAtom("a")))
	b := NewCompound("f", NewInt(1), FromList(NewAtom("a")))
	if !a.Equal(b) {
		t.Error("structurally equal terms reported unequal")
	}
	c := NewCompound("f", NewInt(2), FromList(NewAtom("a")))
	if a.Equal(c) {
		t.Error("unequal terms reported equal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil)")
	}
	if !NewVar("X").Equal(NewVar("X")) || NewVar("X").Equal(NewVar("Y")) {
		t.Error("var equality by name broken")
	}
}

func TestVars(t *testing.T) {
	tt := NewCompound("f", NewVar("X"), NewCompound("g", NewVar("Y"), NewVar("X"), NewVar("_")))
	vs := tt.Vars()
	if len(vs) != 2 || vs[0] != "X" || vs[1] != "Y" {
		t.Errorf("Vars = %v", vs)
	}
}

func TestRename(t *testing.T) {
	tt := NewCompound("f", NewVar("X"), NewVar("Y"))
	r := tt.Rename(map[string]string{"X": "Z"})
	if r.Args[0].Name != "Z" || r.Args[1].Name != "Y" {
		t.Errorf("Rename = %v", r)
	}
	// original untouched
	if tt.Args[0].Name != "X" {
		t.Error("Rename mutated receiver")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Term
		want string
	}{
		{NewAtom("foo"), "foo"},
		{NewAtom("Foo"), "'Foo'"},
		{NewAtom("hello world"), "'hello world'"},
		{NewAtom("=.."), "=.."},
		{NewAtom("[]"), "[]"},
		{NewInt(-7), "-7"},
		{NewVar("X"), "X"},
		{IntList(1, 2), "[1,2]"},
		{Cons(NewInt(1), NewVar("T")), "[1|T]"},
		{NewCompound("f", NewAtom("a"), NewInt(3)), "f(a,3)"},
		{NewCompound("f", NewCompound("g", NewVar("X"))), "f(g(X))"},
		{NewAtom("it's"), `'it\'s'`},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestIndicator(t *testing.T) {
	if NewAtom("a").Indicator() != "a/0" {
		t.Error("atom indicator")
	}
	if NewCompound("f", NewInt(1)).Indicator() != "f/1" {
		t.Error("compound indicator")
	}
}

func TestSymbols(t *testing.T) {
	s := NewSymbols()
	if i := s.Intern("[]"); i != SymEmptyList {
		t.Errorf("[] = %d", i)
	}
	if i := s.Intern("."); i != SymDot {
		t.Errorf(". = %d", i)
	}
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b {
		t.Error("distinct names same index")
	}
	if s.Intern("alpha") != a {
		t.Error("re-intern changed index")
	}
	if s.Name(a) != "alpha" {
		t.Errorf("Name(%d) = %q", a, s.Name(a))
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Error("Lookup invented symbol")
	}
	if got, ok := s.Lookup("beta"); !ok || got != b {
		t.Error("Lookup failed")
	}
	if s.Name(9999) != "<sym?>" {
		t.Error("out-of-range Name")
	}
	if s.Len() < 7 {
		t.Errorf("Len = %d", s.Len())
	}
}
