package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/fault"
	"repro/internal/micro"
	"repro/internal/word"
)

// validTraceBytes encodes a small log for the seed corpus.
func validTraceBytes(tb testing.TB, n int) []byte {
	tb.Helper()
	var l Log
	for i := 0; i < n; i++ {
		l.Cycle(micro.Cycle{
			Module: micro.Module(i % int(micro.NumModules)),
			Cache:  micro.CacheOp(i % int(micro.NumCacheOps)),
			Addr:   word.MakeAddr(word.AreaHeap, uint32(i)),
			Data:   i%2 == 0,
		})
	}
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRead hammers the trace-file decoder with arbitrary bytes:
// whatever the input — corrupted headers, lying record counts, truncated
// bodies — Read must either fail with an error or return a log that
// re-encodes and re-decodes to the same records. It must never panic and
// never let a corrupt header demand absurd allocations.
func FuzzTraceRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("NOTATRACE-------"))
	f.Add([]byte(magic))               // header only, count missing
	f.Add(validTraceBytes(f, 0))       // empty log
	f.Add(validTraceBytes(f, 3))       // small valid log
	f.Add(validTraceBytes(f, 3)[:25])  // truncated mid-record
	lying := validTraceBytes(f, 1)
	binary.LittleEndian.PutUint64(lying[len(magic):], 1<<33) // count >> body
	f.Add(lying)
	huge := validTraceBytes(f, 0)
	binary.LittleEndian.PutUint64(huge[len(magic):], 1<<60) // implausible count
	f.Add(huge)
	// Seeded corruptions from the fault layer: deterministic header
	// bit-flips, mid-record truncations and body flips of a valid stream
	// (seed mod 3 picks the corruption mode, so 0..8 covers each thrice).
	for seed := uint64(0); seed < 9; seed++ {
		f.Add(fault.CorruptTrace(validTraceBytes(f, 7), seed))
	}
	headerFlip := validTraceBytes(f, 2)
	headerFlip[2] ^= 0x20 // corrupt the magic itself
	f.Add(headerFlip)
	midRecord := validTraceBytes(f, 4)
	f.Add(midRecord[:len(midRecord)-3]) // truncate inside the last record

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		// Accepted input: Write/Read must round-trip the decoded records
		// exactly (the padding byte is canonicalized, so we compare
		// records, not raw bytes).
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if len(back.Recs) != len(l.Recs) {
			t.Fatalf("round trip count %d, want %d", len(back.Recs), len(l.Recs))
		}
		for i := range l.Recs {
			if back.Recs[i] != l.Recs[i] {
				t.Fatalf("record %d: round trip %+v, want %+v", i, back.Recs[i], l.Recs[i])
			}
		}
		// The streaming decoder must agree with the materializing one.
		var n int
		if err := ReadStream(bytes.NewReader(data), func(r Rec) bool {
			if r != l.Recs[n] {
				t.Fatalf("stream record %d: %+v, want %+v", n, r, l.Recs[n])
			}
			n++
			return true
		}); err != nil {
			t.Fatalf("ReadStream rejected input Read accepted: %v", err)
		}
		if n != len(l.Recs) {
			t.Fatalf("stream yielded %d records, Read %d", n, len(l.Recs))
		}
	})
}

// FuzzTraceRoundTrip drives the encoder from arbitrary record contents:
// any log must Write and Read back identically.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(3), uint8(4), uint8(1), uint8(0), uint8(1), uint32(42), uint16(3))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint32(0), uint16(0))
	f.Add(uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint32(1<<31), uint16(65535))
	f.Fuzz(func(t *testing.T, mod, s1, s2, d, c, br, fl uint8, addr uint32, reps uint16) {
		n := int(reps)%257 + 1
		l := &Log{Recs: make([]Rec, 0, n)}
		for i := 0; i < n; i++ {
			l.Recs = append(l.Recs, Rec{
				Module: mod, Src1: s1, Src2: s2, Dest: d,
				Cache: c, Branch: br, Flags: fl,
				Addr: addr + uint32(i),
			})
		}
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if len(back.Recs) != n {
			t.Fatalf("count %d, want %d", len(back.Recs), n)
		}
		for i := range l.Recs {
			if back.Recs[i] != l.Recs[i] {
				t.Fatalf("record %d: %+v, want %+v", i, back.Recs[i], l.Recs[i])
			}
		}
	})
}
