// Package trace implements the COLLECT data-collection path: machine
// execution streams microcycle records into an in-memory log that can be
// persisted to a compact binary file and replayed offline by the MAP
// pattern analyzer and the PMMS cache simulator — mirroring how the
// paper's console-processor tool dumped traces for later analysis.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/micro"
	"repro/internal/word"
)

// Rec is one traced microcycle, packed for compact storage.
type Rec struct {
	Module uint8
	Src1   uint8
	Src2   uint8
	Dest   uint8
	Cache  uint8
	Branch uint8
	Flags  uint8 // bit 0: data manipulation
	Addr   uint32
}

// Cycle unpacks the record.
func (r Rec) Cycle() micro.Cycle {
	return micro.Cycle{
		Module: micro.Module(r.Module),
		Src1:   micro.WFMode(r.Src1),
		Src2:   micro.WFMode(r.Src2),
		Dest:   micro.WFMode(r.Dest),
		Cache:  micro.CacheOp(r.Cache),
		Branch: micro.BranchOp(r.Branch),
		Data:   r.Flags&1 != 0,
		Addr:   word.Addr(r.Addr),
	}
}

// Log collects cycle records; it implements micro.Sink.
type Log struct {
	Recs []Rec
}

// Cycle implements micro.Sink.
func (l *Log) Cycle(c micro.Cycle) {
	var flags uint8
	if c.Data {
		flags = 1
	}
	l.Recs = append(l.Recs, Rec{
		Module: uint8(c.Module),
		Src1:   uint8(c.Src1),
		Src2:   uint8(c.Src2),
		Dest:   uint8(c.Dest),
		Cache:  uint8(c.Cache),
		Branch: uint8(c.Branch),
		Flags:  flags,
		Addr:   uint32(c.Addr),
	})
}

// Len reports the number of traced cycles.
func (l *Log) Len() int { return len(l.Recs) }

// Each calls fn for every record in trace order, stopping early when fn
// returns false. It is the streaming counterpart of ranging over Recs:
// consumers written against Each work unchanged whether the records come
// from a materialized log or from ReadStream's file decoder.
func (l *Log) Each(fn func(Rec) bool) {
	for _, r := range l.Recs {
		if !fn(r) {
			return
		}
	}
}

// MemoryAccesses counts records carrying a cache command.
func (l *Log) MemoryAccesses() int {
	n := 0
	for _, r := range l.Recs {
		if micro.CacheOp(r.Cache) != micro.OpNone {
			n++
		}
	}
	return n
}

const magic = "PSITRC1\n"

// Write persists the log.
func (l *Log) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(l.Recs))); err != nil {
		return err
	}
	buf := make([]byte, 12)
	for _, r := range l.Recs {
		buf[0] = r.Module
		buf[1] = r.Src1
		buf[2] = r.Src2
		buf[3] = r.Dest
		buf[4] = r.Cache
		buf[5] = r.Branch
		buf[6] = r.Flags
		buf[7] = 0
		binary.LittleEndian.PutUint32(buf[8:], r.Addr)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStream decodes a trace written by Write record by record, calling
// fn for each in trace order without ever materializing a Log — sweep
// consumers can replay arbitrarily large trace files in O(1) memory.
// Decoding stops early (without error) when fn returns false. A header
// with a bad magic, an implausible record count, or a body shorter than
// the count promises all yield an error.
func ReadStream(r io.Reader, fn func(Rec) bool) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("trace: bad magic %q", head)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("trace: reading count: %w", err)
	}
	if n > 1<<34 {
		return fmt.Errorf("trace: implausible record count %d", n)
	}
	buf := make([]byte, 12)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
		ok := fn(Rec{
			Module: buf[0], Src1: buf[1], Src2: buf[2], Dest: buf[3],
			Cache: buf[4], Branch: buf[5], Flags: buf[6],
			Addr: binary.LittleEndian.Uint32(buf[8:]),
		})
		if !ok {
			return nil
		}
	}
	return nil
}

// Read loads a log written by Write. The initial allocation is bounded
// regardless of the count the header claims, so a corrupt header cannot
// demand gigabytes before the (short) body disproves it.
func Read(r io.Reader) (*Log, error) {
	var recs []Rec
	err := ReadStream(r, func(rec Rec) bool {
		recs = append(recs, rec)
		return true
	})
	if err != nil {
		return nil, err
	}
	return &Log{Recs: recs}, nil
}
