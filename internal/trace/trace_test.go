package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/micro"
	"repro/internal/word"
)

func TestLogCollects(t *testing.T) {
	var l Log
	l.Cycle(micro.Cycle{Module: micro.MUnify, Cache: micro.OpRead,
		Addr: word.MakeAddr(word.AreaHeap, 7), Branch: micro.BCaseTag, Data: true})
	l.Cycle(micro.Cycle{Module: micro.MControl})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.MemoryAccesses() != 1 {
		t.Fatalf("mem = %d", l.MemoryAccesses())
	}
	c := l.Recs[0].Cycle()
	if c.Module != micro.MUnify || c.Cache != micro.OpRead || !c.Data ||
		c.Addr.Offset() != 7 || c.Branch != micro.BCaseTag {
		t.Errorf("round trip: %+v", c)
	}
}

func TestFileRoundTrip(t *testing.T) {
	var l Log
	for i := 0; i < 1000; i++ {
		l.Cycle(micro.Cycle{
			Module: micro.Module(i % int(micro.NumModules)),
			Src1:   micro.WFMode(i % int(micro.NumWFModes)),
			Cache:  micro.CacheOp(i % int(micro.NumCacheOps)),
			Branch: micro.BranchOp(i % int(micro.NumBranchOps)),
			Addr:   word.MakeAddr(word.AreaGlobal, uint32(i)),
			Data:   i%2 == 0,
		})
	}
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Recs) != len(l.Recs) {
		t.Fatalf("count %d vs %d", len(back.Recs), len(l.Recs))
	}
	for i := range l.Recs {
		if back.Recs[i] != l.Recs[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, back.Recs[i], l.Recs[i])
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(mod, s1, s2, d, c, br, fl uint8, addr uint32) bool {
		l := Log{Recs: []Rec{{mod, s1, s2, d, c, br, fl & 1, addr}}}
		var buf bytes.Buffer
		if l.Write(&buf) != nil {
			return false
		}
		back, err := Read(&buf)
		return err == nil && len(back.Recs) == 1 && back.Recs[0] == l.Recs[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input")
	}
	if _, err := Read(strings.NewReader("NOTATRACE-------")); err == nil {
		t.Error("bad magic")
	}
	// Truncated body.
	var l Log
	l.Cycle(micro.Cycle{})
	l.Cycle(micro.Cycle{})
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace should fail")
	}
}

func TestEmptyLog(t *testing.T) {
	var l Log
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil || back.Len() != 0 {
		t.Fatalf("empty round trip: %v %d", err, back.Len())
	}
}
