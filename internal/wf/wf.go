// Package wf models the PSI work file: a 1K-word multi-functional
// register file readable and writable within one microinstruction cycle.
// The layout follows the paper:
//
//	0x000-0x00F  dual-port machine registers (the only words reachable as
//	             ALU source 2): PDR, CDR, stack-top registers, temporaries
//	0x010-0x03F  directly addressable interpreter state
//	0x040-0x07F  local frame buffer A (64 words)
//	0x080-0x0BF  local frame buffer B (64 words)
//	0x0C0-0x0FF  trail buffer
//	0x3C0-0x3FF  constant storage (directly addressable)
//
// The frame buffers cache the local variables of the current execution
// for the tail-recursion-optimizing interpreter; two buffers alternate so
// that a determinate call never touches the local stack. WFAR1/WFAR2 are
// indirect address registers with automatic increment and decrement.
package wf

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/word"
)

// Size is the work-file capacity in words.
const Size = 1024

// Register file regions.
const (
	DualPortBase = 0x000
	DualPortSize = 16
	StateBase    = 0x010
	StateSize    = 48
	FrameABase   = 0x040
	FrameBBase   = 0x080
	FrameSize    = 64
	TrailBufBase = 0x0C0
	TrailBufSize = 64
	ConstBase    = 0x3C0
	ConstSize    = 64
)

// Dual-port register assignments (word indices within 0x00-0x0F).
const (
	RegPDR      = 0  // parent data register (head argument under inspection)
	RegCDR      = 1  // child data register (goal argument under inspection)
	RegLocalTop = 2  // local stack top
	RegGlobTop  = 3  // global stack top
	RegCtrlTop  = 4  // control stack top
	RegTrailTop = 5  // trail stack top
	RegCP       = 6  // current choice point
	RegEnv      = 7  // current environment
	RegT0       = 8  // scratch
	RegT1       = 9  // scratch
	RegT2       = 10 // scratch
	RegT3       = 11 // scratch
)

// File is one work file instance.
type File struct {
	regs  [Size]word.Word
	WFAR1 uint16 // indirect address register 1 (frame buffers)
	WFAR2 uint16 // indirect address register 2 (trail buffer)
	WFCBR uint16 // general-purpose base register

	inj *fault.Injector // nil outside chaos runs
}

// New returns a zeroed work file.
func New() *File { return &File{} }

// Reset zeroes the register file and the address registers, returning the
// work file to its post-New state for machine reuse. The fault injector
// is dropped too; the machine re-wires it per run.
func (f *File) Reset() { *f = File{} }

// SetInjector attaches (or with nil detaches) the fault injector whose
// WFWrite hook models the work-file bounds checker.
func (f *File) SetInjector(inj *fault.Injector) { f.inj = inj }

// The bounds panics below are invariant checks: indices come from the
// firmware model itself, never from user programs. Tripping one means a
// simulator bug; the session boundary contains it as engine.ErrFault.

// Get reads word i.
func (f *File) Get(i int) word.Word {
	if i < 0 || i >= Size {
		panic(fmt.Sprintf("wf: index %d out of range", i))
	}
	return f.regs[i]
}

// Set writes word i.
func (f *File) Set(i int, w word.Word) {
	if i < 0 || i >= Size {
		panic(fmt.Sprintf("wf: index %d out of range", i))
	}
	if f.inj != nil {
		f.inj.WFWrite(i)
	}
	f.regs[i] = w
}

// GetWFAR1 reads through WFAR1, optionally post-incrementing or
// post-decrementing (delta of +1, 0 or -1).
func (f *File) GetWFAR1(delta int) word.Word {
	w := f.regs[f.WFAR1]
	f.WFAR1 = uint16(int(f.WFAR1) + delta)
	return w
}

// SetWFAR1 writes through WFAR1 with post-adjust.
func (f *File) SetWFAR1(w word.Word, delta int) {
	if f.inj != nil {
		f.inj.WFWrite(int(f.WFAR1))
	}
	f.regs[f.WFAR1] = w
	f.WFAR1 = uint16(int(f.WFAR1) + delta)
}

// GetWFAR2 reads through WFAR2 with post-adjust.
func (f *File) GetWFAR2(delta int) word.Word {
	w := f.regs[f.WFAR2]
	f.WFAR2 = uint16(int(f.WFAR2) + delta)
	return w
}

// SetWFAR2 writes through WFAR2 with post-adjust.
func (f *File) SetWFAR2(w word.Word, delta int) {
	if f.inj != nil {
		f.inj.WFWrite(int(f.WFAR2))
	}
	f.regs[f.WFAR2] = w
	f.WFAR2 = uint16(int(f.WFAR2) + delta)
}

// FrameBase returns the base index of frame buffer b (0 or 1).
func FrameBase(b int) int {
	if b == 0 {
		return FrameABase
	}
	return FrameBBase
}

// GetFrame reads local variable slot i of frame buffer b (base-relative
// addressing through PDR/CDR or WFAR1 on the machine).
func (f *File) GetFrame(b, i int) word.Word {
	if i < 0 || i >= FrameSize {
		panic(fmt.Sprintf("wf: frame slot %d out of range", i))
	}
	return f.regs[FrameBase(b)+i]
}

// SetFrame writes local variable slot i of frame buffer b.
func (f *File) SetFrame(b, i int, w word.Word) {
	if i < 0 || i >= FrameSize {
		panic(fmt.Sprintf("wf: frame slot %d out of range", i))
	}
	if f.inj != nil {
		f.inj.WFWrite(FrameBase(b) + i)
	}
	f.regs[FrameBase(b)+i] = w
}

// Const reads constant storage slot i.
func (f *File) Const(i int) word.Word {
	if i < 0 || i >= ConstSize {
		panic(fmt.Sprintf("wf: constant slot %d out of range", i))
	}
	return f.regs[ConstBase+i]
}

// SetConst initializes constant storage slot i (done at firmware load).
func (f *File) SetConst(i int, w word.Word) {
	if i < 0 || i >= ConstSize {
		panic(fmt.Sprintf("wf: constant slot %d out of range", i))
	}
	f.regs[ConstBase+i] = w
}
