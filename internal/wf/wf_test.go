package wf

import (
	"testing"

	"repro/internal/word"
)

func TestGetSet(t *testing.T) {
	f := New()
	f.Set(RegPDR, word.Int32(5))
	if f.Get(RegPDR).Int() != 5 {
		t.Error("register round trip")
	}
}

func TestBoundsPanic(t *testing.T) {
	f := New()
	for _, fn := range []func(){
		func() { f.Get(-1) },
		func() { f.Set(Size, 0) },
		func() { f.GetFrame(0, FrameSize) },
		func() { f.SetFrame(1, -1, 0) },
		func() { f.Const(ConstSize) },
		func() { f.SetConst(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWFAR1AutoIncDec(t *testing.T) {
	f := New()
	f.WFAR1 = FrameABase
	f.SetWFAR1(word.Int32(1), +1)
	f.SetWFAR1(word.Int32(2), +1)
	if f.WFAR1 != FrameABase+2 {
		t.Errorf("WFAR1 = %#x", f.WFAR1)
	}
	f.WFAR1 = FrameABase
	if f.GetWFAR1(+1).Int() != 1 || f.GetWFAR1(-1).Int() != 2 {
		t.Error("indirect read with post-adjust")
	}
	if f.WFAR1 != FrameABase {
		t.Errorf("WFAR1 after dec = %#x", f.WFAR1)
	}
}

func TestWFAR2(t *testing.T) {
	f := New()
	f.WFAR2 = TrailBufBase
	f.SetWFAR2(word.Int32(7), +1)
	f.WFAR2 = TrailBufBase
	if f.GetWFAR2(0).Int() != 7 {
		t.Error("WFAR2 round trip")
	}
}

func TestFrameBuffers(t *testing.T) {
	f := New()
	f.SetFrame(0, 3, word.Int32(30))
	f.SetFrame(1, 3, word.Int32(31))
	if f.GetFrame(0, 3).Int() != 30 || f.GetFrame(1, 3).Int() != 31 {
		t.Error("frame buffers alias")
	}
	if FrameBase(0) != FrameABase || FrameBase(1) != FrameBBase {
		t.Error("frame bases")
	}
	// Frame buffer B must be reachable through direct Get as well.
	if f.Get(FrameBBase+3).Int() != 31 {
		t.Error("frame buffer not in register file")
	}
}

func TestConstants(t *testing.T) {
	f := New()
	f.SetConst(0, word.Nil)
	if f.Const(0) != word.Nil {
		t.Error("constant storage")
	}
	if f.Get(ConstBase) != word.Nil {
		t.Error("constants not in register file")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	regions := [][2]int{
		{DualPortBase, DualPortSize},
		{StateBase, StateSize},
		{FrameABase, FrameSize},
		{FrameBBase, FrameSize},
		{TrailBufBase, TrailBufSize},
		{ConstBase, ConstSize},
	}
	used := map[int][2]int{}
	for _, r := range regions {
		for i := r[0]; i < r[0]+r[1]; i++ {
			if prev, clash := used[i]; clash {
				t.Fatalf("regions %v and %v overlap at %#x", prev, r, i)
			}
			used[i] = r
			if i >= Size {
				t.Fatalf("region %v exceeds work file", r)
			}
		}
	}
}
