// Package word defines the PSI machine word and address formats.
//
// A PSI word is an 8-bit tag plus a 32-bit data part. Instruction code,
// stack cells and register-file contents are all words. Addresses carry a
// 4-bit area identifier selecting one of the independent logical address
// spaces (heap, global/local/control/trail stacks) and a 28-bit word
// offset within the area.
package word

import "fmt"

// Tag is the 8-bit tag part of a PSI word. Tags classify both runtime
// values (constants, references, molecules) and instruction-code words
// (variable slots, skeletons, goal headers).
type Tag uint8

// Runtime value tags.
const (
	// TagUndef marks an unbound variable cell.
	TagUndef Tag = iota
	// TagRef is a bound variable: data is the Addr of the referenced cell.
	TagRef
	// TagAtom is an atomic constant: data is a symbol index.
	TagAtom
	// TagInt is a 32-bit signed integer constant.
	TagInt
	// TagNil is the empty list constant.
	TagNil
	// TagMol is a molecule: data is the global-stack Addr of a two-word
	// (skeleton address, frame address) pair representing a compound term
	// under structure sharing.
	TagMol
	// TagVec is a heap vector reference: data is the heap Addr of a length
	// word followed by the vector elements. Heap vectors are the rewritable
	// data structures used by the WINDOW system.
	TagVec

	// Instruction-code tags.

	// TagLocal is a local variable slot in instruction code: data is the
	// variable index within the clause's local frame.
	TagLocal
	// TagGlobal is a global variable slot: data indexes the global frame.
	TagGlobal
	// TagVoid is an anonymous variable slot in instruction code.
	TagVoid
	// TagSkel points at a compound-term skeleton in the heap area.
	TagSkel
	// TagFunc is a functor descriptor: data packs symbol<<8 | arity.
	TagFunc
	// TagInfo is the clause header word: data packs
	// nlocals<<16 | nglobals<<8 | arity.
	TagInfo
	// TagGoal heads a user-predicate call in a clause body: data packs
	// symbol<<8 | arity; arity argument words follow.
	TagGoal
	// TagBuiltin heads a built-in call: data packs builtin<<8 | arity.
	TagBuiltin
	// TagCut is the cut (!) goal.
	TagCut
	// TagEnd terminates a clause's code.
	TagEnd
	// TagFrame is the second word of a molecule: data is the global frame
	// base address (or 0 for ground skeletons).
	TagFrame

	numTags
)

var tagNames = [...]string{
	TagUndef:   "undef",
	TagRef:     "ref",
	TagAtom:    "atom",
	TagInt:     "int",
	TagNil:     "nil",
	TagMol:     "mol",
	TagVec:     "vec",
	TagLocal:   "local",
	TagGlobal:  "global",
	TagVoid:    "void",
	TagSkel:    "skel",
	TagFunc:    "func",
	TagInfo:    "info",
	TagGoal:    "goal",
	TagBuiltin: "builtin",
	TagCut:     "cut",
	TagEnd:     "end",
	TagFrame:   "frame",
}

// String returns the mnemonic for the tag.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// NumTags reports how many tag values are defined; useful for dispatch
// tables and property tests.
const NumTags = int(numTags)

// Word is one PSI machine word: tag in bits 32..39, data in bits 0..31.
type Word uint64

// New assembles a word from a tag and 32 data bits.
func New(t Tag, data uint32) Word { return Word(uint64(t)<<32 | uint64(data)) }

// Tag extracts the tag part.
func (w Word) Tag() Tag { return Tag(w >> 32) }

// Data extracts the 32-bit data part.
func (w Word) Data() uint32 { return uint32(w) }

// Addr interprets the data part as an address.
func (w Word) Addr() Addr { return Addr(uint32(w)) }

// Int interprets the data part as a signed 32-bit integer.
func (w Word) Int() int32 { return int32(uint32(w)) }

// Atom builds an atom constant word for symbol index sym.
func Atom(sym uint32) Word { return New(TagAtom, sym) }

// Int32 builds an integer constant word.
func Int32(v int32) Word { return New(TagInt, uint32(v)) }

// Nil is the empty-list constant word.
var Nil = New(TagNil, 0)

// Undef is the unbound-cell word.
var Undef = New(TagUndef, 0)

// Ref builds a reference word to the cell at a.
func Ref(a Addr) Word { return New(TagRef, uint32(a)) }

// Mol builds a molecule value word pointing at the pair at a.
func Mol(a Addr) Word { return New(TagMol, uint32(a)) }

// Skel builds a skeleton pointer word.
func Skel(a Addr) Word { return New(TagSkel, uint32(a)) }

// Functor builds a functor descriptor word.
func Functor(sym uint32, arity int) Word {
	return New(TagFunc, sym<<8|uint32(arity)&0xff)
}

// FuncSym extracts the symbol index from a functor, goal or builtin word.
func (w Word) FuncSym() uint32 { return w.Data() >> 8 }

// FuncArity extracts the arity from a functor, goal or builtin word.
func (w Word) FuncArity() int { return int(w.Data() & 0xff) }

// Info builds a clause header word. ginit is the number of global cells
// that must be initialized eagerly at frame allocation (variables whose
// first occurrence is inside a skeleton); the remaining cells materialize
// lazily at their first top-level occurrence.
func Info(nlocals, nglobals, ginit, arity int) Word {
	return New(TagInfo, uint32(nlocals)<<24|uint32(nglobals)<<16|uint32(ginit)<<8|uint32(arity))
}

// InfoLocals extracts the local-frame size from a clause header.
func (w Word) InfoLocals() int { return int(w.Data() >> 24 & 0xff) }

// InfoGlobals extracts the global-frame size from a clause header.
func (w Word) InfoGlobals() int { return int(w.Data() >> 16 & 0xff) }

// InfoGInit extracts the eager-initialization count from a clause header.
func (w Word) InfoGInit() int { return int(w.Data() >> 8 & 0xff) }

// InfoArity extracts the head arity from a clause header.
func (w Word) InfoArity() int { return int(w.Data() & 0xff) }

// FreshBit marks a TagLocal/TagGlobal code word as the variable's first
// executed occurrence: the cell is known unbound, so the firmware writes
// it instead of reading it.
const FreshBit = 1 << 16

// VarIndex extracts the frame slot from a TagLocal/TagGlobal word.
func (w Word) VarIndex() int { return int(w.Data() & 0xffff) }

// IsFresh reports the first-occurrence flag.
func (w Word) IsFresh() bool { return w.Data()&FreshBit != 0 }

// IsConst reports whether the word is an atomic runtime constant.
func (w Word) IsConst() bool {
	switch w.Tag() {
	case TagAtom, TagInt, TagNil:
		return true
	}
	return false
}

// String renders the word for diagnostics.
func (w Word) String() string {
	switch w.Tag() {
	case TagInt:
		return fmt.Sprintf("int:%d", w.Int())
	case TagNil:
		return "nil"
	case TagUndef:
		return "undef"
	case TagFunc, TagGoal, TagBuiltin:
		return fmt.Sprintf("%s:%d/%d", w.Tag(), w.FuncSym(), w.FuncArity())
	case TagInfo:
		return fmt.Sprintf("info:l%d.g%d.a%d", w.InfoLocals(), w.InfoGlobals(), w.InfoArity())
	default:
		return fmt.Sprintf("%s:%#x", w.Tag(), w.Data())
	}
}

// AreaID identifies one independent logical address space.
type AreaID uint8

// The five area kinds. For multi-process configurations each process gets
// its own four stack areas; the heap is shared. StackAreas returns the
// per-process area ids.
const (
	AreaHeap AreaID = iota
	AreaGlobal
	AreaLocal
	AreaControl
	AreaTrail
	numBaseAreas
)

var areaNames = [...]string{"heap", "global", "local", "control", "trail"}

// String names the area kind (process-independent).
func (a AreaID) String() string {
	if a == AreaHeap {
		return "heap"
	}
	k := (a-1)%4 + 1
	return areaNames[k]
}

// kindTab maps an area id (4 address bits, so at most 16 areas) to its
// base kind: 0, then 1-4 cycling for the per-process stack areas. A
// table lookup instead of arithmetic keeps Kind branch-free — it runs
// on every simulated memory access, where the heap-or-stack branch of
// the arithmetic form mispredicts constantly.
var kindTab = [16]AreaID{
	0, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3,
}

// Kind reduces a per-process area id to its base kind (heap, global,
// local, control or trail).
func (a AreaID) Kind() AreaID {
	return kindTab[a&15]
}

// Process reports which process a stack area belongs to (heap returns 0).
func (a AreaID) Process() int {
	if a == AreaHeap {
		return 0
	}
	return int(a-1) / 4
}

// StackArea returns the area id for the given stack kind of a process.
// kind must be one of AreaGlobal..AreaTrail.
func StackArea(process int, kind AreaID) AreaID {
	return AreaID(process*4) + kind
}

// NumAreas reports the number of areas for n processes (heap + 4n stacks).
func NumAreas(processes int) int { return 1 + 4*processes }

// Addr is a logical word address: area id in bits 28..31, offset below.
type Addr uint32

// MaxOffset is the largest word offset representable within an area.
const MaxOffset = 1<<28 - 1

// MakeAddr assembles an address from an area id and a word offset.
func MakeAddr(area AreaID, offset uint32) Addr {
	return Addr(uint32(area)<<28 | offset&MaxOffset)
}

// Area extracts the area id.
func (a Addr) Area() AreaID { return AreaID(a >> 28) }

// Offset extracts the word offset within the area.
func (a Addr) Offset() uint32 { return uint32(a) & MaxOffset }

// Add returns the address displaced by d words within the same area.
func (a Addr) Add(d int) Addr {
	return MakeAddr(a.Area(), uint32(int64(a.Offset())+int64(d)))
}

// String renders the address as area:offset.
func (a Addr) String() string {
	return fmt.Sprintf("%s@%d", a.Area(), a.Offset())
}
