package word

import (
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	cases := []struct {
		tag  Tag
		data uint32
	}{
		{TagUndef, 0},
		{TagRef, 0x0fffffff},
		{TagAtom, 7},
		{TagInt, 0xffffffff},
		{TagMol, 12345},
		{TagEnd, 0},
	}
	for _, c := range cases {
		w := New(c.tag, c.data)
		if w.Tag() != c.tag || w.Data() != c.data {
			t.Errorf("New(%v,%#x) round-trip got (%v,%#x)", c.tag, c.data, w.Tag(), w.Data())
		}
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	f := func(tag uint8, data uint32) bool {
		w := New(Tag(tag), data)
		return w.Tag() == Tag(tag) && w.Data() == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntWord(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 1 << 30, -(1 << 30), 2147483647, -2147483648} {
		if got := Int32(v).Int(); got != v {
			t.Errorf("Int32(%d).Int() = %d", v, got)
		}
	}
}

func TestIntWordProperty(t *testing.T) {
	f := func(v int32) bool { return Int32(v).Int() == v && Int32(v).Tag() == TagInt }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFunctorPacking(t *testing.T) {
	w := Functor(0xabcdef, 17)
	if w.FuncSym() != 0xabcdef {
		t.Errorf("FuncSym = %#x", w.FuncSym())
	}
	if w.FuncArity() != 17 {
		t.Errorf("FuncArity = %d", w.FuncArity())
	}
	if w.Tag() != TagFunc {
		t.Errorf("Tag = %v", w.Tag())
	}
}

func TestFunctorPackingProperty(t *testing.T) {
	f := func(sym uint32, arity uint8) bool {
		sym &= 0xffffff
		w := Functor(sym, int(arity))
		return w.FuncSym() == sym && w.FuncArity() == int(arity)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInfoPacking(t *testing.T) {
	w := Info(200, 25, 7, 8)
	if w.InfoLocals() != 200 || w.InfoGlobals() != 25 || w.InfoGInit() != 7 || w.InfoArity() != 8 {
		t.Errorf("Info round-trip got l%d g%d i%d a%d",
			w.InfoLocals(), w.InfoGlobals(), w.InfoGInit(), w.InfoArity())
	}
}

func TestFreshBit(t *testing.T) {
	w := New(TagLocal, uint32(5)|FreshBit)
	if !w.IsFresh() || w.VarIndex() != 5 {
		t.Errorf("fresh word: fresh=%v idx=%d", w.IsFresh(), w.VarIndex())
	}
	if New(TagGlobal, 5).IsFresh() {
		t.Error("non-fresh word reported fresh")
	}
}

func TestAddrRoundTrip(t *testing.T) {
	a := MakeAddr(AreaControl, 123456)
	if a.Area() != AreaControl || a.Offset() != 123456 {
		t.Errorf("addr round-trip got %v:%d", a.Area(), a.Offset())
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	f := func(area uint8, off uint32) bool {
		area &= 0xf
		off &= MaxOffset
		a := MakeAddr(AreaID(area), off)
		return a.Area() == AreaID(area) && a.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrAdd(t *testing.T) {
	a := MakeAddr(AreaGlobal, 100)
	if b := a.Add(5); b.Offset() != 105 || b.Area() != AreaGlobal {
		t.Errorf("Add(5) = %v", b)
	}
	if b := a.Add(-100); b.Offset() != 0 {
		t.Errorf("Add(-100) = %v", b)
	}
}

func TestStackAreas(t *testing.T) {
	for p := 0; p < 3; p++ {
		for _, k := range []AreaID{AreaGlobal, AreaLocal, AreaControl, AreaTrail} {
			a := StackArea(p, k)
			if a.Kind() != k {
				t.Errorf("StackArea(%d,%v).Kind() = %v", p, k, a.Kind())
			}
			if a.Process() != p {
				t.Errorf("StackArea(%d,%v).Process() = %d", p, k, a.Process())
			}
		}
	}
	if AreaHeap.Kind() != AreaHeap || AreaHeap.Process() != 0 {
		t.Error("heap kind/process wrong")
	}
	if NumAreas(2) != 9 {
		t.Errorf("NumAreas(2) = %d", NumAreas(2))
	}
}

func TestStackAreaDistinct(t *testing.T) {
	seen := map[AreaID]bool{AreaHeap: true}
	for p := 0; p < 3; p++ {
		for _, k := range []AreaID{AreaGlobal, AreaLocal, AreaControl, AreaTrail} {
			a := StackArea(p, k)
			if seen[a] {
				t.Errorf("duplicate area id %d for process %d kind %v", a, p, k)
			}
			seen[a] = true
		}
	}
}

func TestTagString(t *testing.T) {
	if TagMol.String() != "mol" {
		t.Errorf("TagMol.String() = %q", TagMol.String())
	}
	if Tag(200).String() == "" {
		t.Error("unknown tag should still render")
	}
}

func TestWordString(t *testing.T) {
	if s := Int32(-5).String(); s != "int:-5" {
		t.Errorf("Int32(-5).String() = %q", s)
	}
	if s := Nil.String(); s != "nil" {
		t.Errorf("Nil.String() = %q", s)
	}
	if s := Functor(3, 2).String(); s != "func:3/2" {
		t.Errorf("functor string = %q", s)
	}
}

func TestIsConst(t *testing.T) {
	if !Atom(1).IsConst() || !Int32(0).IsConst() || !Nil.IsConst() {
		t.Error("constants misclassified")
	}
	if Ref(0).IsConst() || Mol(0).IsConst() || Undef.IsConst() {
		t.Error("non-constants misclassified")
	}
}

func TestAreaString(t *testing.T) {
	if AreaHeap.String() != "heap" {
		t.Errorf("heap name %q", AreaHeap.String())
	}
	if StackArea(2, AreaTrail).String() != "trail" {
		t.Errorf("trail name %q", StackArea(2, AreaTrail).String())
	}
}
