// Package psi is the public API of the PSI machine reproduction: a
// cycle-accounted simulator of ICOT's Personal Sequential Inference
// machine (the microprogrammed KL0/Prolog interpreter evaluated in
// "Performance and Architectural Evaluation of the PSI Machine",
// ASPLOS 1987), together with the paper's DEC-10 Prolog baseline and
// measurement tooling.
//
// Quick start:
//
//	m, err := psi.LoadProgram(`
//	    app([], L, L).
//	    app([H|T], L, [H|R]) :- app(T, L, R).
//	`, psi.Options{})
//	sols, err := m.Solve("app(X, Y, [1,2,3])")
//	for {
//	    ans, ok := sols.Next()
//	    if !ok { break }
//	    fmt.Println(ans["X"], ans["Y"])
//	}
//	fmt.Println(m.Report())
//
// Every run produces the paper's dynamic measurements: microcycle counts
// per firmware module, cache commands and hit ratios per memory area,
// work-file access modes, branch-operation frequencies, and the simulated
// execution time (200 ns per microcycle plus memory stalls).
package psi

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dec10"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kl0"
	"repro/internal/micro"
	"repro/internal/obs"
	"repro/internal/parse"
	"repro/internal/telemetry"
	"repro/internal/term"
	"repro/internal/trace"
	"repro/internal/word"
)

// Options configures a PSI machine.
type Options struct {
	// CacheWords selects the cache capacity (0 = the PSI's 8K words).
	CacheWords int
	// CacheSets selects the associativity (0 = the PSI's 2 sets).
	CacheSets int
	// StoreThrough switches the write policy from the PSI's store-in.
	StoreThrough bool
	// NoCache disables the cache entirely.
	NoCache bool
	// Processes allocates stack areas for this many processes (0 = 1).
	Processes int
	// Out receives write/1 output (nil = discarded).
	Out io.Writer
	// Collect attaches a COLLECT trace to the run.
	Collect bool
	// Fast requests the fast accounting engine mode: batched statistics
	// updates instead of the per-cycle sink funnel, with bit-identical
	// answers, statistics and simulated time. Runs that arm a per-cycle
	// consumer (Collect, Fault, or Profile without Fast surviving) fall
	// back to the exact path — Machine.ModeDowngradeReason names the
	// cause. Progress, Spans and the flight recorder never downgrade,
	// and Profile under a surviving Fast switches to the sampling
	// profiler; see Machine.AccountingMode.
	Fast bool
	// MaxSteps bounds the simulation (0 = 4e9 steps).
	MaxSteps int64
	// Features ablates individual hardware features or enables the
	// PSI-II extensions (see core.Features).
	Features Features
	// Profile attaches the simulated-workload profiler. On the exact
	// engine every micro-cycle is attributed to the predicate executing
	// it; under a surviving Fast request the statistical sampling
	// profiler is attached instead, keeping the accounting mode "fast"
	// (see Machine.Profile — the returned profile says which it was).
	Profile bool
	// SampleStride sets the sampling profiler's stride in micro-cycles
	// (0 = telemetry.DefaultSampleStride). Only meaningful with Profile
	// and Fast together.
	SampleStride int64
	// Spans, when non-nil, records a host-time span for every
	// Solutions.Step slice into the given log, for Chrome trace-event
	// export (`psi -trace-out`). Never affects simulated output.
	Spans *telemetry.SpanLog
	// Progress, when non-nil, receives periodic heartbeats while a
	// query runs. The callback runs on the simulation path and must be
	// cheap. ProgressEvery sets the period in micro-cycles (0 = the
	// core default, 5M cycles = one simulated second).
	Progress      func(obs.Progress)
	ProgressEvery int64
	// Fault, when non-nil, injects a deterministic seeded fault into the
	// simulated hardware (see internal/fault). The detected fault aborts
	// the run with a contained engine.ErrFault instead of a panic. The
	// plan's Only filter is a harness concept and is ignored here: a
	// machine loaded with a plan always carries its injector.
	Fault *fault.Plan
}

// Features re-exports the machine feature switches.
type Features = core.Features

// Machine is a loaded PSI machine.
type Machine struct {
	m      *core.Machine
	prog   *kl0.Program
	log    *trace.Log
	prof   *obs.Profiler
	samp   *telemetry.SamplingProfiler
	flight *telemetry.Flight
}

// Solutions enumerates query answers; see (*Machine).Solve.
type Solutions = core.Solutions

// LoadProgram parses and compiles Prolog source and loads it into a
// fresh PSI machine.
func LoadProgram(source string, opts Options) (*Machine, error) {
	prog := kl0.NewProgram(nil)
	cs, err := parse.Clauses("<program>", source)
	if err != nil {
		return nil, err
	}
	if err := prog.AddClauses(cs); err != nil {
		return nil, err
	}
	cfg := core.Config{
		Processes: opts.Processes,
		Out:       opts.Out,
		MaxSteps:  opts.MaxSteps,
		NoCache:   opts.NoCache,
		Features:  opts.Features,
		Fast:      opts.Fast,
	}
	if opts.Fault != nil {
		cfg.Fault = opts.Fault.New()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 4_000_000_000
	}
	if opts.CacheWords != 0 || opts.CacheSets != 0 || opts.StoreThrough {
		cc := cache.PSI
		if opts.CacheWords != 0 {
			cc.Words = opts.CacheWords
		}
		if opts.CacheSets != 0 {
			cc.Assoc = opts.CacheSets
		}
		if opts.StoreThrough {
			cc.Policy = cache.StoreThrough
		}
		cfg.Cache = cc
	}
	mm := &Machine{prog: prog}
	if opts.Collect {
		mm.log = &trace.Log{}
		cfg.Trace = mm.log
	}
	if opts.Profile {
		if opts.Fast && !opts.Collect && opts.Fault == nil {
			// The fast engine survives: profile statistically from its
			// event boundary instead of downgrading to the per-cycle sink.
			mm.samp = telemetry.NewSamplingProfiler(opts.SampleStride)
			cfg.Sample = mm.samp
			cfg.SampleEvery = opts.SampleStride
		} else {
			mm.prof = obs.NewProfiler()
			cfg.Profile = mm.prof
		}
	}
	cfg.Spans = opts.Spans
	// The flight recorder is always on: a fixed-size ring of recent
	// telemetry events per session, dumped into the report's fault block
	// when a run ends in a contained fault.
	mm.flight = telemetry.NewFlight(0)
	cfg.Flight = mm.flight
	if opts.Progress != nil {
		fn := opts.Progress
		cfg.Progress = func(hb core.Heartbeat) {
			fn(obs.Progress{Cycles: hb.Steps, SimNS: hb.SimNS, Inferences: hb.Inferences})
		}
		cfg.ProgressEvery = opts.ProgressEvery
	}
	mm.m = core.New(prog, cfg)
	return mm, nil
}

// AddClauses compiles additional clauses into the loaded program.
func (m *Machine) AddClauses(source string) error {
	cs, err := parse.Clauses("<added>", source)
	if err != nil {
		return err
	}
	return m.prog.AddClauses(cs)
}

// Solve runs a query; iterate the returned Solutions for the answers.
func (m *Machine) Solve(goal string) (*Solutions, error) {
	return m.m.Solve(goal)
}

// stepper is the stepped-execution surface both engines' Solutions
// share (see internal/engine).
type stepper interface {
	Step(budget int64) engine.Status
	Err() error
	Bindings() map[string]*term.Term
}

// nextCtx drives a stepped search under a context: cancelable contexts
// slice the run and surface engine.ErrDeadline / engine.ErrCanceled;
// nil or non-cancelable contexts run unbounded exactly like Next.
func nextCtx(ctx context.Context, s stepper) (map[string]*Term, bool, error) {
	st, err := engine.Drive(ctx, func(budget int64) (engine.Status, error) {
		st := s.Step(budget)
		if st == engine.Failed {
			return st, s.Err()
		}
		return st, nil
	})
	switch {
	case err != nil:
		return nil, false, err
	case st == engine.Solution:
		return s.Bindings(), true, nil
	default:
		return nil, false, nil
	}
}

// NextCtx returns the next PSI answer, honoring the context's deadline
// and cancellation. Errors carry an engine error class: use
// engine.ExitCode / engine.ClassName (or errors.Is against
// engine.ErrStepLimit etc.) to classify them.
func NextCtx(ctx context.Context, sols *Solutions) (map[string]*Term, bool, error) {
	return nextCtx(ctx, sols)
}

// BaselineNextCtx is NextCtx for the DEC-10 baseline.
func BaselineNextCtx(ctx context.Context, sols *BaselineSolutions) (map[string]*Term, bool, error) {
	return nextCtx(ctx, sols)
}

// SetInterruptHandler installs a goal run on another process context
// whenever the program executes the interrupt/0 built-in (the machine
// must have been loaded with Options.Processes >= 2).
func (m *Machine) SetInterruptHandler(process int, goal string) error {
	g, err := parse.Term(goal)
	if err != nil {
		return err
	}
	q, err := m.prog.CompileQuery(g)
	if err != nil {
		return err
	}
	return m.m.SetInterruptHandler(process, q)
}

// TimeNS reports the simulated execution time in nanoseconds.
func (m *Machine) TimeNS() int64 { return m.m.TimeNS() }

// Inferences reports the logical inference count (for LIPS).
func (m *Machine) Inferences() int64 { return m.m.Inferences() }

// Steps reports the executed microcycle count.
func (m *Machine) Steps() int64 { return m.m.Stats().Steps }

// Stats exposes the full microcycle statistics.
func (m *Machine) Stats() *micro.Stats { return m.m.Stats() }

// AccountingMode reports the effective cycle-accounting mode, "exact"
// or "fast": what the machine actually runs, not what Options.Fast
// requested — arming a per-cycle consumer forces "exact" (see
// ModeDowngradeReason).
func (m *Machine) AccountingMode() string { return m.m.AccountingMode() }

// ModeDowngradeReason names the per-cycle consumers ("trace",
// "profile", "fault", joined with "+") that forced exact accounting
// despite Options.Fast; "" when fast ran or was never requested.
func (m *Machine) ModeDowngradeReason() string { return m.m.ModeDowngradeReason() }

// FlightEvents returns the flight recorder's retained telemetry events,
// oldest first — the session's recent Step slices, heartbeats and
// faults. The same events appear in the run report's fault block when a
// run ends in a contained fault.
func (m *Machine) FlightEvents() []telemetry.FlightEvent { return m.flight.Events() }

// CacheHitRatio reports the overall cache hit ratio (1 when the cache is
// disabled or untouched).
func (m *Machine) CacheHitRatio() float64 {
	if c := m.m.Cache(); c != nil {
		return c.HitRatio()
	}
	return 1
}

// Cache exposes the cache model (nil when disabled).
func (m *Machine) Cache() *cache.Cache { return m.m.Cache() }

// Trace returns the COLLECT trace (nil unless Options.Collect was set).
func (m *Machine) Trace() *trace.Log { return m.log }

// Profile resolves the simulated-workload profile collected so far (nil
// unless Options.Profile was set). The profile's TotalCycles equals
// Stats().Steps exactly. On the exact engine every micro-cycle is
// attributed to precisely one predicate, with query glue and runtime
// stubs under "<main>"; under a surviving fast request the profile is
// statistical (its Sampled field is set) with per-predicate cycles
// estimated by stride sampling.
func (m *Machine) Profile(workload string) *obs.RunProfile {
	if m.samp != nil {
		return obs.SampledProfile(m.samp, m.prog, workload)
	}
	if m.prof == nil {
		return nil
	}
	return m.prof.Profile(m.prog, workload)
}

// RunReport assembles the structured, stable-schema report of the run so
// far. host may be nil for fully deterministic output.
func (m *Machine) RunReport(workload string, host *obs.HostReport) *obs.RunReport {
	return obs.NewRunReport(m.m, workload, host)
}

// KLIPS reports the achieved logical inferences per second (in
// thousands) over the simulated time.
func (m *Machine) KLIPS() float64 {
	t := m.TimeNS()
	if t == 0 {
		return 0
	}
	return float64(m.Inferences()) / (float64(t) / 1e9) / 1000
}

// Report renders a human-readable summary of the run's dynamic
// characteristics, in the spirit of the paper's tables.
func (m *Machine) Report() string {
	s := m.m.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "steps %d, inferences %d, time %.3f ms, %.1f KLIPS\n",
		s.Steps, m.Inferences(), float64(m.TimeNS())/1e6, m.KLIPS())
	fmt.Fprintf(&b, "modules:")
	for mod := micro.Module(0); mod < micro.NumModules; mod++ {
		fmt.Fprintf(&b, " %s %.1f%%", mod, s.ModuleRatio(mod)*100)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "memory: %.1f%% of steps (read %.1f%%, write-stack %.1f%%, write %.1f%%)\n",
		(s.CacheOpRatio(micro.OpRead)+s.CacheOpRatio(micro.OpWrite)+s.CacheOpRatio(micro.OpWriteStack))*100,
		s.CacheOpRatio(micro.OpRead)*100, s.CacheOpRatio(micro.OpWriteStack)*100, s.CacheOpRatio(micro.OpWrite)*100)
	fmt.Fprintf(&b, "areas:")
	for k := word.AreaID(0); k < 5; k++ {
		fmt.Fprintf(&b, " %s %.1f%%", k, s.AreaAccessRatio(k)*100)
	}
	fmt.Fprintln(&b)
	if c := m.m.Cache(); c != nil {
		fmt.Fprintf(&b, "cache: %s, hit ratio %.2f%%\n", c.Config(), c.HitRatio()*100)
	}
	return b.String()
}

// ---- the DEC-10 baseline ------------------------------------------------

// Baseline is the compiled-code DEC-10 Prolog comparator of Table 1.
type Baseline struct {
	m    *dec10.Machine
	prog *dec10.Program
}

// BaselineSolutions enumerates baseline answers.
type BaselineSolutions = dec10.Solutions

// LoadBaseline compiles a program for the DEC-10 baseline engine.
func LoadBaseline(source string, out io.Writer) (*Baseline, error) {
	prog := dec10.NewProgram(nil)
	cs, err := parse.Clauses("<program>", source)
	if err != nil {
		return nil, err
	}
	if err := prog.AddClauses(cs); err != nil {
		return nil, err
	}
	return &Baseline{
		m:    dec10.New(prog, dec10.Config{Out: out, MaxUnits: 4_000_000_000}),
		prog: prog,
	}, nil
}

// Solve runs a query on the baseline.
func (b *Baseline) Solve(goal string) (*BaselineSolutions, error) {
	return b.m.Solve(goal)
}

// SetMaxUnits adjusts the baseline's abort bound (0 = none).
func (b *Baseline) SetMaxUnits(n int64) { b.m.SetMaxUnits(n) }

// TimeNS reports the modelled DEC-2060 execution time.
func (b *Baseline) TimeNS() int64 { return b.m.TimeNS() }

// Calls reports the call/execute count.
func (b *Baseline) Calls() int64 { return b.m.Calls() }

// ---- term helpers ---------------------------------------------------------

// Term is the shared source-level term representation returned in answer
// bindings.
type Term = term.Term

// ParseTerm parses one Prolog term.
func ParseTerm(src string) (*Term, error) { return parse.Term(src) }

// DisasmPSI compiles source and renders the KL0 instruction code of one
// predicate.
func DisasmPSI(source, name string, arity int) (string, error) {
	prog := kl0.NewProgram(nil)
	cs, err := parse.Clauses("<program>", source)
	if err != nil {
		return "", err
	}
	if err := prog.AddClauses(cs); err != nil {
		return "", err
	}
	idx, ok := prog.LookupProc(name, arity)
	if !ok {
		return "", fmt.Errorf("psi: no predicate %s/%d", name, arity)
	}
	return prog.Disasm(idx), nil
}

// DisasmBaseline compiles source for the DEC-10 engine and renders one
// predicate's compiled code, including its indexing blocks.
func DisasmBaseline(source, name string, arity int) (string, error) {
	prog := dec10.NewProgram(nil)
	cs, err := parse.Clauses("<program>", source)
	if err != nil {
		return "", err
	}
	if err := prog.AddClauses(cs); err != nil {
		return "", err
	}
	idx, ok := prog.LookupProc(name, arity)
	if !ok {
		return "", fmt.Errorf("psi: no predicate %s/%d", name, arity)
	}
	return prog.Disasm(idx), nil
}
