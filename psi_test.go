package psi

import (
	"strings"
	"testing"
)

const appendSrc = `
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
`

func TestQuickstartFlow(t *testing.T) {
	m, err := LoadProgram(appendSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols, err := m.Solve("app(X, Y, [1,2,3])")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		ans, ok := sols.Next()
		if !ok {
			break
		}
		n++
		if ans["X"] == nil || ans["Y"] == nil {
			t.Fatal("missing bindings")
		}
	}
	if n != 4 {
		t.Fatalf("split count = %d", n)
	}
	if m.Steps() == 0 || m.TimeNS() == 0 || m.Inferences() == 0 {
		t.Error("no metrics")
	}
	if m.KLIPS() <= 0 {
		t.Error("KLIPS")
	}
	r := m.Report()
	for _, want := range []string{"steps", "modules:", "memory:", "areas:", "cache:"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestOptionsCacheConfig(t *testing.T) {
	m, err := LoadProgram(appendSrc, Options{CacheWords: 512, CacheSets: 1, StoreThrough: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Cache().Config()
	if cfg.Words != 512 || cfg.Assoc != 1 {
		t.Errorf("cache config %v", cfg)
	}
	if m.CacheHitRatio() != 1 {
		t.Error("untouched cache should report 1")
	}
}

func TestNoCache(t *testing.T) {
	m, err := LoadProgram(appendSrc, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache() != nil {
		t.Fatal("cache should be nil")
	}
	sols, _ := m.Solve("app([1],[2],R)")
	if _, ok := sols.Next(); !ok {
		t.Fatal("query failed")
	}
	if m.CacheHitRatio() != 1 {
		t.Error("no-cache hit ratio")
	}
}

func TestCollectTrace(t *testing.T) {
	m, err := LoadProgram(appendSrc, Options{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	sols, _ := m.Solve("app([1,2],[3],R)")
	sols.Next()
	if m.Trace() == nil || m.Trace().Len() == 0 {
		t.Fatal("no trace collected")
	}
	if int64(m.Trace().Len()) != m.Steps() {
		t.Errorf("trace %d records vs %d steps", m.Trace().Len(), m.Steps())
	}
}

func TestAddClauses(t *testing.T) {
	m, err := LoadProgram(appendSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddClauses("pal(L) :- app(A, B, L), A = B."); err == nil {
		// A = B with lists is fine; the clause references app from the
		// earlier batch.
		sols, _ := m.Solve("pal([1,1])")
		if _, ok := sols.Next(); ok {
			t.Log("palindrome-ish query succeeded")
		}
	} else {
		t.Fatal(err)
	}
}

func TestBaseline(t *testing.T) {
	b, err := LoadBaseline(appendSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := b.Solve("app([1,2],[3],R)")
	if err != nil {
		t.Fatal(err)
	}
	ans, ok := sols.Next()
	if !ok || ans["R"].String() != "[1,2,3]" {
		t.Fatalf("baseline answer %v", ans)
	}
	if b.TimeNS() <= 0 || b.Calls() <= 0 {
		t.Error("baseline metrics")
	}
}

func TestInterruptViaAPI(t *testing.T) {
	m, err := LoadProgram(`
handler_work(0) :- !.
handler_work(N) :- M is N - 1, handler_work(M).
svc :- handler_work(5).
main :- interrupt, interrupt.
`, Options{Processes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetInterruptHandler(1, "svc"); err != nil {
		t.Fatal(err)
	}
	sols, _ := m.Solve("main")
	if _, ok := sols.Next(); !ok {
		t.Fatal("interrupting program failed")
	}
}

func TestParseTerm(t *testing.T) {
	tm, err := ParseTerm("f(X, [1,2])")
	if err != nil || tm.Functor != "f" {
		t.Fatalf("%v %v", tm, err)
	}
	if _, err := ParseTerm("f("); err == nil {
		t.Error("bad term should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadProgram("p :- q(", Options{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := LoadProgram("p :- undefined.", Options{}); err == nil {
		t.Error("compile error not surfaced")
	}
	if _, err := LoadBaseline("p :- q(", nil); err == nil {
		t.Error("baseline parse error not surfaced")
	}
}

func TestDisasmAPI(t *testing.T) {
	out, err := DisasmPSI(appendSrc, "app", 3)
	if err != nil || !strings.Contains(out, "app/3") {
		t.Fatalf("DisasmPSI: %v\n%s", err, out)
	}
	dout, err := DisasmBaseline(appendSrc, "app", 3)
	if err != nil || !strings.Contains(dout, "switch_on_term") {
		t.Fatalf("DisasmBaseline: %v\n%s", err, dout)
	}
	if _, err := DisasmPSI(appendSrc, "nosuch", 1); err == nil {
		t.Error("missing predicate should error")
	}
	if _, err := DisasmBaseline(appendSrc, "nosuch", 1); err == nil {
		t.Error("missing predicate should error (baseline)")
	}
	if _, err := DisasmPSI("p :- q(", "p", 0); err == nil {
		t.Error("parse error should surface")
	}
}

func TestFindallThroughAPI(t *testing.T) {
	m, err := LoadProgram("n(3). n(1). n(2).", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols, err := m.Solve("findall(X, n(X), L)")
	if err != nil {
		t.Fatal(err)
	}
	ans, ok := sols.Next()
	if !ok || ans["L"].String() != "[3,1,2]" {
		t.Fatalf("findall: %v", ans)
	}
}

func TestIndexingOption(t *testing.T) {
	base, err := LoadProgram(appendSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := LoadProgram(appendSrc, Options{Features: Features{Indexing: true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Machine{base, idx} {
		sols, _ := m.Solve("app([1,2,3,4,5,6,7,8], [x], R)")
		if ans, ok := sols.Next(); !ok || ans["R"].String() != "[1,2,3,4,5,6,7,8,x]" {
			t.Fatal("append failed")
		}
	}
	if idx.Steps() >= base.Steps() {
		t.Errorf("indexing did not help: %d vs %d steps", idx.Steps(), base.Steps())
	}
}
