package psi

// Process-level battery for the psid daemon: the pieces an httptest
// server cannot exercise — the real TCP listener, the readiness line,
// SIGTERM drain semantics and the exit code — plus a shelled
// differential against the psi binary's -json report.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// buildPsid compiles the daemon binary into a temp dir.
func buildPsid(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI binary builds")
	}
	bin := filepath.Join(t.TempDir(), "psid")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/psid")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/psid: %v\n%s", err, out)
	}
	return bin
}

// psidProc is a running daemon under test.
type psidProc struct {
	cmd  *exec.Cmd
	base string // http://host:port

	mu     sync.Mutex
	stderr strings.Builder
}

func (p *psidProc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// startPsid launches the daemon on an ephemeral port and waits for the
// readiness line — "psid: listening on <addr>" — which is the contract
// supervisors parse.
func startPsid(t *testing.T, bin string, extraArgs ...string) *psidProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &psidProc{cmd: cmd}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr.WriteString(line + "\n")
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "psid: listening on "); ok {
				select {
				case ready <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-ready:
		p.base = "http://" + addr
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never printed the readiness line; stderr:\n%s", p.stderrText())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return p
}

func postSpec(t *testing.T, base string, spec map[string]any) (*http.Response, []byte, error) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Timeout: 60 * time.Second}
	resp, err := hc.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, nil, err
	}
	return resp, b, nil
}

func waitInflight(t *testing.T, base string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			var st struct {
				Inflight int64 `json:"inflight"`
			}
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.Inflight == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never reached inflight=%d", want)
}

const loopSrc = "loop. loop :- loop.\ngo :- loop, fail.\n"

// TestPsidGracefulDrain is the issue's drain scenario: SIGTERM arrives
// mid-flight; the in-flight job completes with its own budget class
// (here: deadline → 408), new connections are refused, and the daemon
// exits 0.
func TestPsidGracefulDrain(t *testing.T) {
	bin := buildPsid(t)
	p := startPsid(t, bin, "-drain-timeout", "30s")

	type result struct {
		resp *http.Response
		body []byte
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		resp, b, err := postSpec(t, p.base, map[string]any{
			"program": loopSrc, "timeout_ms": 1500, "workload": "drain-slow",
		})
		slow <- result{resp, b, err}
	}()
	waitInflight(t, p.base, 1)

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// New work is refused once drain begins: the listener closes, so the
	// request fails at dial time (or, in the drain window, gets 503).
	refused := false
	for i := 0; i < 100 && !refused; i++ {
		resp, _, err := postSpec(t, p.base, map[string]any{"program": "go :- true.\n"})
		if err != nil || resp.StatusCode == http.StatusServiceUnavailable {
			refused = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("daemon kept accepting jobs after SIGTERM")
	}

	// The in-flight job still completes, terminated by its own budget.
	r := <-slow
	if r.err != nil {
		t.Fatalf("in-flight job dropped during drain: %v", r.err)
	}
	if r.resp.StatusCode != http.StatusRequestTimeout {
		t.Errorf("in-flight job status = %d, want 408\n%s", r.resp.StatusCode, r.body)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(r.body, &rep); err != nil || rep.Termination != "deadline" {
		t.Errorf("in-flight report termination = %q (err %v), want deadline", rep.Termination, err)
	}

	if err := p.cmd.Wait(); err != nil {
		t.Errorf("daemon exit after drain = %v, want 0; stderr:\n%s", err, p.stderrText())
	}
	if !strings.Contains(p.stderrText(), "psid: drained") {
		t.Errorf("drain completion not logged; stderr:\n%s", p.stderrText())
	}
}

// TestPsidDrainTimeoutCancels covers the other drain arm: a job with no
// budget of its own outlives the drain window, is hard-canceled, and
// the daemon still exits 0.
func TestPsidDrainTimeoutCancels(t *testing.T) {
	bin := buildPsid(t)
	p := startPsid(t, bin, "-drain-timeout", "300ms")

	type result struct {
		resp *http.Response
		body []byte
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		resp, b, err := postSpec(t, p.base, map[string]any{
			"program": loopSrc, "workload": "drain-unbounded",
		})
		slow <- result{resp, b, err}
	}()
	waitInflight(t, p.base, 1)

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	r := <-slow
	if r.err != nil {
		t.Fatalf("hard-canceled job dropped without a response: %v", r.err)
	}
	if r.resp.StatusCode != 499 {
		t.Errorf("hard-canceled job status = %d, want 499\n%s", r.resp.StatusCode, r.body)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(r.body, &rep); err != nil || rep.Termination != "canceled" {
		t.Errorf("hard-canceled report termination = %q (err %v), want canceled", rep.Termination, err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Errorf("daemon exit after hard cancel = %v, want 0; stderr:\n%s", err, p.stderrText())
	}
}

// TestPsidShelledDifferential closes the loop at the process level: the
// daemon's response for a job equals the psi binary's -json report for
// the same program, once the host section (wall-clock, allocations —
// non-deterministic by design) is normalized away on both sides.
func TestPsidShelledDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI binary builds")
	}
	dir := t.TempDir()
	psiBin := filepath.Join(dir, "psi")
	cmd := exec.Command("go", "build", "-o", psiBin, "./cmd/psi")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/psi: %v\n%s", err, out)
	}
	psidBin := buildPsid(t)
	p := startPsid(t, psidBin)

	src := "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).\n" +
		"go :- app([a,b,c,d,e,f,g], [h,i,j], X), X = [a|_].\n"
	progPath := filepath.Join(dir, "prog.pl")
	if err := os.WriteFile(progPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "report.json")
	cli := exec.Command(psiBin, "-report=false", "-json", jsonPath, progPath)
	if out, err := cli.CombinedOutput(); err != nil {
		t.Fatalf("psi run: %v\n%s", err, out)
	}
	cliBytes, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	resp, daemonBytes, err := postSpec(t, p.base, map[string]any{
		"program": src, "workload": progPath,
	})
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon job failed: status %v err %v\n%s", resp, err, daemonBytes)
	}

	normalize := func(b []byte) string {
		var rep obs.RunReport
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatalf("bad report: %v\n%s", err, b)
		}
		rep.Host = nil
		out, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	if got, want := normalize(daemonBytes), normalize(cliBytes); got != want {
		t.Errorf("daemon report differs from `psi -json`:\ndaemon:\n%s\npsi:\n%s", got, want)
	}

	p.cmd.Process.Signal(syscall.SIGTERM)
	p.cmd.Wait()
}
