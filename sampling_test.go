package psi

// The sampling-vs-exact differential suite: the statistical profiler's
// whole claim is that it reproduces the exact profiler's per-predicate
// attribution within telemetry.ShareTolerance while keeping the fast
// accounting engine fast. This suite locks the claim on all Table 1
// programs; BENCH_obs.json records the measured worst case.

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/progs"
	"repro/internal/telemetry"
)

// TestSamplingDifferentialTable1 profiles every Table 1 program with the
// exact per-cycle profiler and the stride-sampling profiler and bounds
// the per-predicate attribution error:
//
//   - the sampled total equals the exact total exactly (both equal the
//     run's Steps count — the sampler flushes its partial stride at the
//     observation boundary);
//   - every predicate's sampled cycle share is within
//     telemetry.ShareTolerance (absolute) of its exact share, including
//     predicates one side attributes and the other does not.
func TestSamplingDifferentialTable1(t *testing.T) {
	table := progs.Table1()
	if testing.Short() {
		table = table[:5]
	}
	for _, b := range table {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			exact, err := harness.Profile(b)
			if err != nil {
				t.Fatal(err)
			}
			samp, err := harness.SampleProfile(b, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !samp.Sampled || samp.SampleStride != telemetry.DefaultSampleStride {
				t.Fatalf("SampleProfile returned a non-sampled profile: %+v", samp)
			}
			if samp.TotalCycles != exact.TotalCycles {
				t.Errorf("sampled total %d != exact total %d", samp.TotalCycles, exact.TotalCycles)
			}
			shares := make(map[string]float64, len(exact.Entries))
			for _, e := range exact.Entries {
				shares[e.Name] = e.Share
			}
			for _, e := range samp.Entries {
				d := e.Share - shares[e.Name]
				if d < 0 {
					d = -d
				}
				if d > telemetry.ShareTolerance {
					t.Errorf("%s: sampled share %.4f vs exact %.4f (|delta| %.4f > %.2f)",
						e.Name, e.Share, shares[e.Name], d, float64(telemetry.ShareTolerance))
				}
				delete(shares, e.Name)
			}
			// Predicates the sampler never observed must be below the
			// tolerance in the exact profile too.
			for name, share := range shares {
				if share > telemetry.ShareTolerance {
					t.Errorf("%s: exact share %.4f but the sampler attributed nothing", name, share)
				}
			}
		})
	}
}
