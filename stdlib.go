package psi

// StdLib is a small library of the standard list and control predicates
// most Prolog programs expect, written in the KL0 subset so it runs on
// both engines. Load it with Options or prepend it to program source.
const StdLib = `
% ---- lists ----------------------------------------------------------------
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

length([], 0).
length([_|T], N) :- length(T, M), N is M + 1.

reverse(L, R) :- reverse_(L, [], R).
reverse_([], A, A).
reverse_([H|T], A, R) :- reverse_(T, [H|A], R).

nth0(0, [X|_], X) :- !.
nth0(N, [_|T], X) :- N > 0, M is N - 1, nth0(M, T, X).

nth1(N, L, X) :- M is N - 1, nth0(M, L, X).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).

delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X) :- !.
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).

min_list([X], X) :- !.
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).

% msort/2: merge sort by the standard order of terms (duplicates kept).
msort([], []) :- !.
msort([X], [X]) :- !.
msort(L, S) :-
    split_(L, A, B),
    msort(A, SA), msort(B, SB),
    merge_(SA, SB, S).
split_([], [], []).
split_([X], [X], []) :- !.
split_([X, Y|T], [X|A], [Y|B]) :- split_(T, A, B).
merge_([], L, L) :- !.
merge_(L, [], L) :- !.
merge_([X|Xs], [Y|Ys], [X|R]) :- X @=< Y, !, merge_(Xs, [Y|Ys], R).
merge_(Xs, [Y|Ys], [Y|R]) :- merge_(Xs, Ys, R).

% sort/2: msort with duplicate removal.
sort(L, S) :- msort(L, M), dedup_(M, S).
dedup_([], []).
dedup_([X], [X]) :- !.
dedup_([X, Y|T], R) :- X == Y, !, dedup_([Y|T], R).
dedup_([X|T], [X|R]) :- dedup_(T, R).

% ---- control ---------------------------------------------------------------
between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

succ_or_zero(0).

once(G) :- call(G), !.

ignore(G) :- call(G), !.
ignore(_).

forall_fail_(G) :- call(G), fail.
forall_fail_(_).

forall(Cond, Action) :- \+ (Cond, \+ Action).

aggregate_count(G, N) :- findall(x, G, L), length(L, N).

% bagof-lite: findall that fails on an empty result, as bagof does when
% no solution exists.
bagof_simple(T, G, L) :- findall(T, G, L), L = [_|_].
`

// LoadProgramWithStdLib loads the standard library ahead of the program
// source.
func LoadProgramWithStdLib(source string, opts Options) (*Machine, error) {
	return LoadProgram(StdLib+"\n"+source, opts)
}
