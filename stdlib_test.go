package psi

import "testing"

func stdQuery(t *testing.T, query, v string, want ...string) {
	t.Helper()
	m, err := LoadProgramWithStdLib("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols, err := m.Solve(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	var got []string
	for len(got) < len(want)+3 {
		ans, ok := sols.Next()
		if !ok {
			break
		}
		got = append(got, ans[v].String())
	}
	if sols.Err() != nil {
		t.Fatalf("%s: %v", query, sols.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", query, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: answer %d = %s, want %s", query, i, got[i], want[i])
		}
	}
}

func TestStdLibLists(t *testing.T) {
	stdQuery(t, "append([1,2], [3], R)", "R", "[1,2,3]")
	stdQuery(t, "member(X, [a,b,c])", "X", "a", "b", "c")
	stdQuery(t, "length([a,b,c,d], N)", "N", "4")
	stdQuery(t, "reverse([1,2,3], R)", "R", "[3,2,1]")
	stdQuery(t, "nth0(1, [a,b,c], X)", "X", "b")
	stdQuery(t, "nth1(3, [a,b,c], X)", "X", "c")
	stdQuery(t, "last([a,b,c], X)", "X", "c")
	stdQuery(t, "select(X, [1,2,3], [1,3])", "X", "2")
	stdQuery(t, "delete([a,b,a,c], a, R)", "R", "[b,c]")
	stdQuery(t, "sum_list([1,2,3,4], S)", "S", "10")
	stdQuery(t, "max_list([3,9,2], M)", "M", "9")
	stdQuery(t, "min_list([3,9,2], M)", "M", "2")
}

func TestStdLibSorting(t *testing.T) {
	stdQuery(t, "msort([3,1,2,1], S)", "S", "[1,1,2,3]")
	stdQuery(t, "sort([3,1,2,1], S)", "S", "[1,2,3]")
	stdQuery(t, "msort([b, f(1), a, 10, 2, f(0)], S)", "S", "[2,10,a,b,f(0),f(1)]")
	stdQuery(t, "sort([c,a,b,a], S)", "S", "[a,b,c]")
}

func TestStdLibControl(t *testing.T) {
	stdQuery(t, "between(1, 4, X)", "X", "1", "2", "3", "4")
	stdQuery(t, "once(member(X, [p,q,r]))", "X", "p")
	stdQuery(t, "ignore(member(X, [])), X = untouched", "X", "untouched")
	stdQuery(t, "permutation([1,2], P)", "P", "[1,2]", "[2,1]")
}

func TestStdLibAggregates(t *testing.T) {
	m, err := LoadProgramWithStdLib("n(1). n(2). n(3).", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sols, err := m.Solve("aggregate_count(n(_), N)")
	if err != nil {
		t.Fatal(err)
	}
	ans, ok := sols.Next()
	if !ok || ans["N"].String() != "3" {
		t.Fatalf("count = %v", ans)
	}
	sols2, _ := m.Solve("forall(n(X), X < 5)")
	if _, ok := sols2.Next(); !ok {
		t.Error("forall should hold")
	}
	sols3, _ := m.Solve("forall(n(X), X < 3)")
	if _, ok := sols3.Next(); ok {
		t.Error("forall should fail")
	}
	sols4, _ := m.Solve("bagof_simple(X, n(X), L)")
	if ans, ok := sols4.Next(); !ok || ans["L"].String() != "[1,2,3]" {
		t.Errorf("bagof_simple: %v", ans)
	}
	sols5, _ := m.Solve("bagof_simple(X, (n(X), X > 9), L)")
	if _, ok := sols5.Next(); ok {
		t.Error("bagof_simple on empty should fail")
	}
}

func TestStdLibCompare(t *testing.T) {
	stdQuery(t, "compare(O, 1, 2)", "O", "<")
	stdQuery(t, "compare(O, f(b), f(a))", "O", ">")
	stdQuery(t, "compare(O, foo, foo)", "O", "=")
	stdQuery(t, "compare(O, abc, 999)", "O", ">")      // integers before atoms
	stdQuery(t, "compare(O, f(a), g(a, b))", "O", "<") // arity first
	m, _ := LoadProgramWithStdLib("", Options{})
	for _, q := range []string{"a @< b", "f(1) @> 99", "x @=< x", "g(2) @>= g(1)"} {
		sols, err := m.Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := sols.Next(); !ok {
			t.Errorf("%s failed", q)
		}
	}
}

// TestStdLibOnBaseline runs the same library on the DEC-10 engine.
func TestStdLibOnBaseline(t *testing.T) {
	b, err := LoadBaseline(StdLib, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"reverse([1,2,3], R)":           "[3,2,1]",
		"msort([3,1,2], R)":             "[1,2,3]",
		"sort([b,a,b], R)":              "[a,b]",
		"msort([b, f(1), a, 10, 2], R)": "[2,10,a,b,f(1)]",
	}
	for q, want := range cases {
		sols, err := b.Solve(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		ans, ok := sols.Next()
		if !ok || ans["R"].String() != want {
			t.Errorf("%s = %v, want %s", q, ans, want)
		}
	}
}
